// Microbench for the Eq. 6 claim: maintaining a view through a bounded
// delta costs O(|Δ|), versus O(|w|) to re-run the query — "as high as a
// full degree of a polynomial" of savings (§4.2) — measured per operator
// shape (σπ, γ, ⋈) and including the delta-coalescing ablation.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ra/executor.h"
#include "view/incremental.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

// Builds a DeltaSet of `updates` label flips, like a k-step MH round.
view::DeltaSet MakeLabelDeltas(NerBench& bench, size_t updates,
                               uint64_t seed) {
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), seed);
  bench.tokens.pdb->DiscardDeltas();
  size_t applied = 0;
  while (applied < updates) {
    if (sampler->Step()) ++applied;
  }
  return bench.tokens.pdb->TakeDeltas();
}

void BM_FullQueryExecution(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, bench.tokens.pdb->db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::Execute(*plan, bench.tokens.pdb->db()));
  }
}

// Pre-generates a consistent sequence of delta rounds (each ~100 accepted
// label flips) so the timed loop measures only MaterializedView::Apply.
// The sequence comes from one continuous chain, so applying the rounds in
// order keeps the view consistent.
std::vector<view::DeltaSet> MakeDeltaSequence(NerBench& bench, size_t rounds,
                                              uint64_t seed) {
  std::vector<view::DeltaSet> out;
  out.reserve(rounds);
  for (size_t r = 0; r < rounds; ++r) {
    out.push_back(MakeLabelDeltas(bench, 100, seed + r));
  }
  return out;
}

// Each benchmark below is pinned to exactly kDeltaRounds iterations
// (deltas replay consistently only once, in order, from the initial world).
constexpr size_t kDeltaRounds = 1000;

void ApplyDeltaBench(benchmark::State& state, const char* query) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  ra::PlanPtr plan = sql::PlanQuery(query, bench.tokens.pdb->db());
  view::MaterializedView view(*plan);
  view.Initialize(bench.tokens.pdb->db());
  // A few spare rounds in case the framework runs warm-up iterations.
  const auto deltas = MakeDeltaSequence(bench, kDeltaRounds + 64, 1);
  size_t i = 0;
  for (auto _ : state) {
    FGPDB_CHECK_LT(i, deltas.size());
    benchmark::DoNotOptimize(view.Apply(deltas[i++]));
  }
}

void BM_ViewApplyDelta(benchmark::State& state) {
  ApplyDeltaBench(state, ie::kQuery1);
}

void BM_ViewApplyDeltaJoin(benchmark::State& state) {
  // Query 4's self-join, maintained through deltas.
  ApplyDeltaBench(state, ie::kQuery4);
}

void BM_ViewApplyDeltaAggregate(benchmark::State& state) {
  // Query 3's grouped COUNT_IF + HAVING, maintained through deltas.
  ApplyDeltaBench(state, ie::kQuery3);
}

void BM_DeltaCoalescing(benchmark::State& state) {
  // Ablation (DESIGN.md): per-row coalescing means a row flipped R times
  // between evaluations contributes at most 2 delta entries, not 2R.
  const size_t flips = static_cast<size_t>(state.range(0));
  NerBench bench(10000);
  const auto domain = ie::LabelDomain();
  for (auto _ : state) {
    view::DeltaSet deltas;
    uint32_t current = ie::kLabelO;
    for (size_t i = 0; i < flips; ++i) {
      const uint32_t next = (current + 1) % ie::kNumLabels;
      bench.tokens.pdb->binding().ApplyToDatabase(
          {{0, current, next}}, &bench.tokens.pdb->db(), &deltas);
      current = next;
    }
    benchmark::DoNotOptimize(deltas.Get(ie::kTokenTable).distinct_size());
  }
}

}  // namespace

BENCHMARK(BM_FullQueryExecution)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDelta)->Arg(10000)->Arg(100000)
    ->Iterations(kDeltaRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaJoin)->Arg(10000)->Arg(50000)
    ->Iterations(kDeltaRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaAggregate)->Arg(10000)->Arg(50000)
    ->Iterations(kDeltaRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeltaCoalescing)->Arg(10)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
