#include "infer/exact.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace fgpdb {
namespace infer {
namespace {

// Invokes fn(world) for every joint assignment (last variable fastest).
template <typename Fn>
void EnumerateWorlds(const factor::FactorGraph& graph, Fn&& fn) {
  const size_t n = graph.num_variables();
  factor::World world = graph.MakeWorld();
  while (true) {
    fn(world);
    // Mixed-radix increment.
    size_t i = n;
    while (i > 0) {
      --i;
      const auto var = static_cast<factor::VarId>(i);
      if (world.Get(var) + 1 < graph.domain_size(var)) {
        world.Set(var, world.Get(var) + 1);
        break;
      }
      world.Set(var, 0);
      if (i == 0) return;
    }
    if (n == 0) return;
  }
}

size_t CountWorlds(const factor::FactorGraph& graph, size_t max_worlds) {
  size_t total = 1;
  for (size_t v = 0; v < graph.num_variables(); ++v) {
    total *= graph.domain_size(static_cast<factor::VarId>(v));
    FGPDB_CHECK_LE(total, max_worlds)
        << "graph too large for exact inference";
  }
  return total;
}

}  // namespace

ExactResult ExactInference(const factor::FactorGraph& graph,
                           size_t max_worlds) {
  const size_t num_worlds = CountWorlds(graph, max_worlds);
  std::vector<double> log_scores;
  log_scores.reserve(num_worlds);
  EnumerateWorlds(graph,
                  [&](const factor::World& w) { log_scores.push_back(graph.LogScore(w)); });

  ExactResult result;
  result.log_partition = LogSumExp(log_scores);
  result.marginals.resize(graph.num_variables());
  for (size_t v = 0; v < graph.num_variables(); ++v) {
    result.marginals[v].assign(graph.domain_size(static_cast<factor::VarId>(v)),
                               0.0);
  }
  result.world_probabilities.reserve(num_worlds);
  size_t index = 0;
  EnumerateWorlds(graph, [&](const factor::World& w) {
    const double p = std::exp(log_scores[index++] - result.log_partition);
    result.world_probabilities.push_back(p);
    for (size_t v = 0; v < graph.num_variables(); ++v) {
      result.marginals[v][w.Get(static_cast<factor::VarId>(v))] += p;
    }
  });
  return result;
}

double ExactWorldProbability(const factor::FactorGraph& graph,
                             const factor::World& world, size_t max_worlds) {
  CountWorlds(graph, max_worlds);
  std::vector<double> log_scores;
  EnumerateWorlds(graph, [&](const factor::World& w) {
    log_scores.push_back(graph.LogScore(w));
  });
  return std::exp(graph.LogScore(world) - LogSumExp(log_scores));
}

}  // namespace infer
}  // namespace fgpdb
