// Query-targeted proposal distributions (paper §4.1 / §6 future work):
//
//   "a query might target an isolated subset of the database, then the
//    proposal distribution only has to sample this subset".
//
// SubsetUniformProposal restricts the uniform single-variable kernel to an
// explicit variable subset. When the query's answer depends only on those
// variables (e.g. Query 4 only reads documents containing 'Boston'), the
// restricted chain converges on the query marginals with far fewer
// proposals — the ablation bench/ablation_targeted quantifies the gain.
// Variables outside the subset keep their current values, so the sampled
// distribution is the conditional π(Y_subset | Y_rest) — exactly the object
// the query needs when it is independent of Y_rest.
#ifndef FGPDB_INFER_SUBSET_PROPOSAL_H_
#define FGPDB_INFER_SUBSET_PROPOSAL_H_

#include <vector>

#include "infer/proposal.h"

namespace fgpdb {
namespace infer {

class SubsetUniformProposal final : public Proposal {
 public:
  /// `variables` is the target subset (deduplicated by the caller if
  /// needed); must be non-empty.
  SubsetUniformProposal(const factor::Model& model,
                        std::vector<factor::VarId> variables);

  using Proposal::Propose;
  void Propose(const factor::World& world, Rng& rng, factor::Change* change,
               double* log_ratio) override;

  size_t subset_size() const { return variables_.size(); }

 private:
  const factor::Model& model_;
  std::vector<factor::VarId> variables_;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_SUBSET_PROPOSAL_H_
