#include "storage/schema.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace fgpdb {

Schema::Schema(std::vector<Attribute> attributes,
               std::optional<size_t> primary_key)
    : attributes_(std::move(attributes)), primary_key_(primary_key) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const bool inserted = by_name_.emplace(attributes_[i].name, i).second;
    FGPDB_CHECK(inserted) << "duplicate attribute " << attributes_[i].name;
  }
  if (primary_key_.has_value()) {
    FGPDB_CHECK_LT(*primary_key_, attributes_.size());
  }
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

size_t Schema::RequireIndexOf(const std::string& name) const {
  const auto idx = IndexOf(name);
  FGPDB_CHECK(idx.has_value()) << "unknown attribute " << name;
  return *idx;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (size_t i = 0; i < attributes_.size(); ++i) {
    std::string part = attributes_[i].name;
    part += " ";
    part += ValueTypeName(attributes_[i].type);
    if (primary_key_ == i) part += " PRIMARY KEY";
    parts.push_back(std::move(part));
  }
  return Join(parts, ", ");
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].type != other.attributes_[i].type) {
      return false;
    }
  }
  return primary_key_ == other.primary_key_;
}

}  // namespace fgpdb
