// Checkpoint / restore: because the database always stores a single
// deterministic possible world (paper §3), persisting the PDB is just
// persisting ordinary relations. This example samples for a while, saves
// the TOKEN relation to CSV, restores it into a fresh probabilistic
// database, and resumes inference from exactly where it left off.
//
//   ./examples/checkpoint [dir]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "storage/csv_io.h"

using namespace fgpdb;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : std::string("/tmp/fgpdb_checkpoint");

  // Build and sample a world.
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = 8000});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  auto sampler = tokens.pdb->MakeSampler(&proposal, 7);
  sampler->Run(200000);
  tokens.pdb->DiscardDeltas();
  std::cout << "Sampled 200k steps; acceptance rate "
            << sampler->acceptance_rate() << "\n";

  // Checkpoint the world (plain CSV — the world is just a relation).
  std::filesystem::remove_all(dir);
  SaveDatabaseCsv(tokens.pdb->db(), dir);
  std::cout << "Checkpointed TOKEN relation to " << dir << "\n";

  // Restore into a fresh PDB: rebind LABEL fields, reload the world vector
  // from the stored values, reuse the same model (weights are state-free).
  auto restored_db = LoadDatabaseCsv(dir);
  pdb::ProbabilisticDatabase restored;
  {
    const Table* token_table = restored_db->RequireTable(ie::kTokenTable);
    Table* dest = restored.db().CreateTable(ie::kTokenTable,
                                            token_table->schema());
    token_table->Scan([&](RowId, const Tuple& t) { dest->Insert(t); });
    const auto domain = ie::LabelDomain();
    for (RowId row = 0; row < dest->row_capacity(); ++row) {
      restored.binding().Bind(ie::kTokenTable, row, ie::kColLabel, domain);
    }
    restored.SyncWorldFromDatabase();
  }
  restored.set_model(&model);

  // The restored world must be bit-identical to the checkpointed one.
  size_t mismatches = 0;
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    if (restored.world().Get(static_cast<factor::VarId>(v)) !=
        tokens.pdb->world().Get(static_cast<factor::VarId>(v))) {
      ++mismatches;
    }
  }
  std::cout << "Restored world: " << mismatches << " label mismatches (want 0)\n";

  // Resume: answer Query 1 from the restored state through the Session
  // front door (the session samples its own snapshot of `restored`).
  auto session = api::Session::Open(
      {.database = &restored,
       .proposal_factory =
           [&tokens](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
             return std::make_unique<ie::DocumentBatchProposal>(&tokens.docs);
           },
       .evaluator = {.steps_per_sample = 1000, .seed = 9}});
  api::ResultHandle query = session->Register(ie::kQuery1);
  session->Run(200);
  const api::QueryProgress progress = query.Snapshot();
  std::cout << "Resumed inference: " << progress.answer.Sorted().size()
            << " tuples in the Query 1 answer after " << progress.samples
            << " samples.\n";
  for (const auto& [tuple, p] : progress.answer.TopK(3)) {
    std::cout << "  " << tuple.ToString() << "  Pr=" << p << "\n";
  }
  std::filesystem::remove_all(dir);
  return 0;
}
