// Multi-chain parallel query evaluation (paper §5.4).
//
// Runs B independent Metropolis–Hastings chains, each over its own deep
// copy of the world, and averages their marginal counts. Cross-chain
// samples are far more independent than within-chain samples, which is why
// the paper observes super-linear error reduction in the number of chains.
#ifndef FGPDB_PDB_PARALLEL_EVALUATOR_H_
#define FGPDB_PDB_PARALLEL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "pdb/query_evaluator.h"

namespace fgpdb {
namespace pdb {

struct ParallelOptions {
  size_t num_chains = 4;
  uint64_t samples_per_chain = 100;
  EvaluatorOptions chain_options;
  /// Evaluate with view maintenance (Alg. 1) or the naive path (Alg. 3).
  bool materialized = true;
  /// Run chains on worker threads; false = sequential (deterministic order,
  /// useful with a single core or in tests).
  bool use_threads = true;
};

/// Factory producing a fresh per-chain proposal (proposals hold chain-local
/// state such as the §5.1 document batch, so they cannot be shared).
using ProposalFactory =
    std::function<std::unique_ptr<infer::Proposal>(ProbabilisticDatabase&)>;

/// Clones `pdb` into `options.num_chains` worlds, runs each chain for
/// `samples_per_chain` samples, and returns the merged (averaged) answer.
QueryAnswer EvaluateParallel(const ProbabilisticDatabase& pdb,
                             const ra::PlanNode& plan,
                             const ProposalFactory& make_proposal,
                             const ParallelOptions& options);

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_PARALLEL_EVALUATOR_H_
