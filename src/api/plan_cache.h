// Cross-session prepared-plan cache (the serve layer's L2).
//
// Many tenants issuing the same queries against one server should bind and
// plan each distinct text ONCE: serve::Server owns a PlanCache and hands it
// to every tenant Session, whose per-instance prepared map becomes a
// read-through L1 (Session::Prepare checks its own map, then this cache,
// and only then parses/binds — inserting the result into both layers).
//
// Keys are sql::NormalizeForCache texts, so the two layers always agree on
// query identity. Entries are immutable shared PreparedQuery instances;
// plans reference base tables by NAME (ra::ScanNode), so a plan bound in
// one session evaluates correctly in any session over the same catalog
// shape — which holds for every session snapshotted from one server's base
// database. Bounded LRU: Insert past capacity evicts the least recently
// looked-up entry (sessions already holding the shared_ptr keep it alive;
// eviction only forgets the cache's reference).
//
// Thread-safe: tenants prepare concurrently from scheduler threads.
#ifndef FGPDB_API_PLAN_CACHE_H_
#define FGPDB_API_PLAN_CACHE_H_

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/session.h"

namespace fgpdb {
namespace api {

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// `capacity` distinct normalized texts (at least 1).
  explicit PlanCache(size_t capacity);

  /// The cached plan for `normalized_sql` (bumped to most-recently-used),
  /// or null. Counts one hit or miss.
  PreparedQueryPtr Lookup(const std::string& normalized_sql);

  /// Inserts (or refreshes) an entry, evicting the LRU entry when full.
  void Insert(const std::string& normalized_sql, PreparedQueryPtr prepared);

  Stats stats() const;

 private:
  struct Entry {
    PreparedQueryPtr prepared;
    std::list<std::string>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  const size_t capacity_;
  /// Front = most recently used; values are the map keys.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace api
}  // namespace fgpdb

#endif  // FGPDB_API_PLAN_CACHE_H_
