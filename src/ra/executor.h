// Materializing bag executor for relational plans.
//
// This is the "full query" path — what the naive evaluator (paper Alg. 3)
// runs over every sampled world, and what the materialized evaluator
// (Alg. 1) runs exactly once to initialize its views.
#ifndef FGPDB_RA_EXECUTOR_H_
#define FGPDB_RA_EXECUTOR_H_

#include <vector>

#include "ra/plan.h"
#include "storage/database.h"

namespace fgpdb {
namespace ra {

/// Evaluates `plan` against the single world stored in `db`, returning a bag
/// of tuples (duplicates preserved; order unspecified except under OrderBy).
std::vector<Tuple> Execute(const PlanNode& plan, const Database& db);

}  // namespace ra
}  // namespace fgpdb

#endif  // FGPDB_RA_EXECUTOR_H_
