#include "ie/labels.h"

#include "util/logging.h"

namespace fgpdb {
namespace ie {
namespace {

const std::vector<std::string>& Names() {
  static const auto* kNames = new std::vector<std::string>{
      "O",     "B-PER", "I-PER",  "B-ORG", "I-ORG",
      "B-LOC", "I-LOC", "B-MISC", "I-MISC"};
  return *kNames;
}

}  // namespace

const std::string& LabelName(uint32_t label) {
  FGPDB_CHECK_LT(label, kNumLabels);
  return Names()[label];
}

uint32_t LabelIndex(const std::string& name) {
  for (uint32_t i = 0; i < kNumLabels; ++i) {
    if (Names()[i] == name) return i;
  }
  FGPDB_FATAL() << "unknown label " << name;
  return 0;
}

EntityType LabelType(uint32_t label) {
  switch (label) {
    case 0:
      return EntityType::kNone;
    case 1:
    case 2:
      return EntityType::kPer;
    case 3:
    case 4:
      return EntityType::kOrg;
    case 5:
    case 6:
      return EntityType::kLoc;
    default:
      return EntityType::kMisc;
  }
}

bool IsBegin(uint32_t label) { return label != 0 && label % 2 == 1; }

bool IsInside(uint32_t label) { return label != 0 && label % 2 == 0; }

uint32_t BeginLabel(EntityType type) {
  switch (type) {
    case EntityType::kPer:
      return 1;
    case EntityType::kOrg:
      return 3;
    case EntityType::kLoc:
      return 5;
    case EntityType::kMisc:
      return 7;
    case EntityType::kNone:
      break;
  }
  FGPDB_FATAL() << "no begin label for O";
  return 0;
}

uint32_t InsideLabel(EntityType type) { return BeginLabel(type) + 1; }

bool ValidTransition(uint32_t prev, uint32_t label) {
  if (!IsInside(label)) return true;
  return LabelType(prev) == LabelType(label) && prev != 0;
}

std::shared_ptr<const factor::Domain> LabelDomain() {
  static const std::shared_ptr<const factor::Domain> kDomain =
      std::make_shared<factor::Domain>(factor::Domain::OfStrings(Names()));
  return kDomain;
}

const std::vector<std::string>& AllLabelNames() { return Names(); }

}  // namespace ie
}  // namespace fgpdb
