// Feature-id helpers for the skip-chain NER templates.
//
// The template-space hashes are computed at compile time (HashString is
// constexpr), so building a feature id pays only the role-mixing steps —
// call sites never re-hash the "emission"/"transition"/... string literals.
// Tests and diagnostics that spell out MakeFeatureId("emission", ...) by
// hand produce identical ids.
#ifndef FGPDB_IE_NER_FEATURES_H_
#define FGPDB_IE_NER_FEATURES_H_

#include <cstdint>

#include "factor/feature_vector.h"

namespace fgpdb {
namespace ie {

inline constexpr uint64_t kEmissionSpace = HashString("emission");
inline constexpr uint64_t kTransitionSpace = HashString("transition");
inline constexpr uint64_t kBiasSpace = HashString("bias");
inline constexpr uint64_t kSkipSameSpace = HashString("skip_same");
inline constexpr uint64_t kSkipSameLabelSpace = HashString("skip_same_label");

/// ψ(string_i, y_i) — string/label compatibility.
constexpr factor::FeatureId EmissionFeature(uint32_t string_id,
                                            uint32_t label) {
  return factor::MakeFeatureIdFromSpace(kEmissionSpace, string_id, label);
}

/// ψ(y_i, y_{i+1}) — first-order Markov dependency.
constexpr factor::FeatureId TransitionFeature(uint32_t from, uint32_t to) {
  return factor::MakeFeatureIdFromSpace(kTransitionSpace, from, to);
}

/// ψ(y_i) — label frequency.
constexpr factor::FeatureId BiasFeature(uint32_t label) {
  return factor::MakeFeatureIdFromSpace(kBiasSpace, label);
}

// Skip features fire only when the two labels agree.
constexpr factor::FeatureId SkipSameFeature() {
  return factor::MakeFeatureIdFromSpace(kSkipSameSpace);
}
constexpr factor::FeatureId SkipSameLabelFeature(uint32_t label) {
  return factor::MakeFeatureIdFromSpace(kSkipSameLabelSpace, label);
}

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_NER_FEATURES_H_
