#include "infer/metropolis_hastings.h"

#include <cmath>
#include <optional>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace infer {

MetropolisHastings::MetropolisHastings(const factor::Model& model,
                                       factor::World* world,
                                       Proposal* proposal, uint64_t seed)
    : model_(model),
      world_(world),
      proposal_(proposal),
      rng_(seed),
      score_scratch_(model.MakeScratch()) {
  FGPDB_CHECK(world_ != nullptr);
  FGPDB_CHECK(proposal_ != nullptr);
}

bool MetropolisHastings::Step() {
  // Phase timing is opt-in (set_phase_totals); the detached path is the
  // untimed template instantiation — no clock reads at all.
  return phase_totals_ != nullptr ? StepImpl<true>() : StepImpl<false>();
}

template <bool kTimed>
bool MetropolisHastings::StepImpl() {
  std::optional<Stopwatch> phase_timer;
  if constexpr (kTimed) {
    phase_timer.emplace();
    ++phase_totals_->steps;
  }

  ++num_proposed_;
  double log_proposal_ratio = 0.0;
  const factor::Change change =
      proposal_->Propose(*world_, rng_, &log_proposal_ratio);
  if constexpr (kTimed) {
    phase_totals_->propose_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (change.empty()) {
    // Self-transition: counted as accepted (the chain stays put).
    ++num_accepted_;
    return true;
  }
  const double log_model_ratio =
      model_.LogScoreDelta(*world_, change, score_scratch_.get());
  const double log_alpha = log_model_ratio + log_proposal_ratio;
  bool accept = log_alpha >= 0.0;
  if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
  if constexpr (kTimed) {
    phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (!accept) return false;

  applied_scratch_.clear();
  world_->Apply(change, &applied_scratch_);
  // Drop no-op assignments (value unchanged) before notifying listeners so
  // delta buffers only see real modifications.
  auto& applied = applied_scratch_;
  applied.erase(std::remove_if(applied.begin(), applied.end(),
                               [](const factor::AppliedAssignment& a) {
                                 return a.old_value == a.new_value;
                               }),
                applied.end());
  ++num_accepted_;
  if constexpr (kTimed) {
    phase_totals_->apply_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (!applied.empty()) {
    for (const auto& listener : listeners_) listener(applied);
  }
  if constexpr (kTimed) {
    phase_totals_->mirror_seconds += phase_timer->ElapsedSeconds();
  }
  return true;
}

}  // namespace infer
}  // namespace fgpdb
