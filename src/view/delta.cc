#include "view/delta.h"

#include <algorithm>
#include <vector>

namespace fgpdb {
namespace view {

const DeltaMultiset DeltaSet::kEmpty;

void DeltaMultiset::Add(const Tuple& tuple, int64_t count) {
  if (count == 0) return;
  auto [it, inserted] = counts_.emplace(tuple, count);
  if (!inserted) {
    it->second += count;
    if (it->second == 0) counts_.erase(it);
  }
}

int64_t DeltaMultiset::Count(const Tuple& tuple) const {
  const auto it = counts_.find(tuple);
  return it == counts_.end() ? 0 : it->second;
}

void DeltaMultiset::Merge(const DeltaMultiset& other) {
  for (const auto& [tuple, count] : other.counts_) Add(tuple, count);
}

void DeltaMultiset::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  for (const auto& [tuple, count] : counts_) fn(tuple, count);
}

int64_t DeltaMultiset::PositiveTotal() const {
  int64_t total = 0;
  for (const auto& [tuple, count] : counts_) {
    (void)tuple;
    if (count > 0) total += count;
  }
  return total;
}

int64_t DeltaMultiset::NegativeTotal() const {
  int64_t total = 0;
  for (const auto& [tuple, count] : counts_) {
    (void)tuple;
    if (count < 0) total -= count;
  }
  return total;
}

bool DeltaMultiset::IsNonNegative() const {
  for (const auto& [tuple, count] : counts_) {
    (void)tuple;
    if (count < 0) return false;
  }
  return true;
}

std::string DeltaMultiset::ToString() const {
  std::vector<std::pair<Tuple, int64_t>> sorted(counts_.begin(), counts_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].first.ToString() + ":" + std::to_string(sorted[i].second);
  }
  out += "}";
  return out;
}

const DeltaMultiset& DeltaSet::Get(const std::string& table) const {
  const auto it = per_table_.find(table);
  return it == per_table_.end() ? kEmpty : it->second;
}

bool DeltaSet::empty() const {
  for (const auto& [table, delta] : per_table_) {
    (void)table;
    if (!delta.empty()) return false;
  }
  return true;
}

int64_t DeltaSet::TotalMagnitude() const {
  int64_t total = 0;
  for (const auto& [table, delta] : per_table_) {
    (void)table;
    total += delta.PositiveTotal() + delta.NegativeTotal();
  }
  return total;
}

}  // namespace view
}  // namespace fgpdb
