// Recursive-descent parser for the supported SQL subset:
//
//   SELECT [DISTINCT] item, ...      (expr [AS alias] | aggregate calls | *)
//   FROM table [alias] [, table [alias]]
//   [WHERE expr]  [GROUP BY col, ...]  [HAVING expr]
//   [ORDER BY col, ... [ASC|DESC]]  [LIMIT n]
//
// COUNT_IF(pred) is a convenience aggregate used to express the paper's
// Query 3 (per-document equality of two filtered counts) without correlated
// subqueries; see DESIGN.md.
#ifndef FGPDB_SQL_PARSER_H_
#define FGPDB_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"

namespace fgpdb {
namespace sql {

/// Parses one SELECT statement. Fatal (with offending token) on syntax
/// errors — queries in fgpdb are developer-authored, not end-user input.
SelectStatement Parse(const std::string& query);

}  // namespace sql
}  // namespace fgpdb

#endif  // FGPDB_SQL_PARSER_H_
