// Multi-query shared-chain correctness (the paper's central economy): K
// queries registered on ONE api::Session must answer exactly what K
// standalone single-query runs answer at the same seed — the chain
// trajectory never depends on which views ride it, so the per-query
// marginals are required to be bitwise-identical, not just close.
#include <gtest/gtest.h>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/parallel_evaluator.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"

namespace fgpdb {
namespace {

struct NerFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerFixture(size_t num_tokens, uint64_t seed = 21) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  pdb::ProposalFactory MakeFactory() {
    return [this](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 300});
    };
  }
};

const std::vector<const char*>& PaperQueries() {
  static const std::vector<const char*> kQueries = {
      ie::kQuery1, ie::kQuery2, ie::kQuery3, ie::kQuery4};
  return kQueries;
}

void ExpectBitwiseEqual(const pdb::QueryAnswer& got,
                        const pdb::QueryAnswer& want, const char* query) {
  EXPECT_EQ(got.num_samples(), want.num_samples()) << query;
  const auto got_sorted = got.Sorted();
  const auto want_sorted = want.Sorted();
  ASSERT_EQ(got_sorted.size(), want_sorted.size()) << query;
  for (size_t i = 0; i < got_sorted.size(); ++i) {
    EXPECT_EQ(got_sorted[i].first, want_sorted[i].first) << query;
    // Bitwise: both sides computed count/num_samples from equal integers.
    EXPECT_EQ(got_sorted[i].second, want_sorted[i].second)
        << query << " tuple " << got_sorted[i].first.ToString();
  }
  EXPECT_EQ(got.SquaredError(want), 0.0) << query;
}

TEST(SessionSharedChainTest, QueryBundleMatchesStandaloneRunsBitwise) {
  NerFixture fixture(500);
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 400, .burn_in = 800, .seed = 2024};

  // One session, Queries 1–4 on one shared chain.
  auto session = api::Session::Open({.database = fixture.tokens.pdb.get(),
                                     .proposal_factory = fixture.MakeFactory(),
                                     .evaluator = options});
  std::vector<api::ResultHandle> handles;
  for (const char* query : PaperQueries()) {
    handles.push_back(session->Register(query));
  }
  session->Run(30);

  // Four standalone single-query chains with the same seed.
  for (size_t q = 0; q < PaperQueries().size(); ++q) {
    const char* query = PaperQueries()[q];
    auto world = fixture.tokens.pdb->Clone();
    ra::PlanPtr plan = sql::PlanQuery(query, world->db());
    ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                       {.proposals_per_batch = 300});
    pdb::MaterializedQueryEvaluator standalone(world.get(), &proposal,
                                               plan.get(), options);
    standalone.Run(30);
    ExpectBitwiseEqual(handles[q].Snapshot().answer, standalone.answer(),
                       query);
  }
}

TEST(SessionSharedChainTest, ParallelBundleMatchesPerQueryParallelRuns) {
  NerFixture fixture(400);
  const pdb::EvaluatorOptions chain_options{
      .steps_per_sample = 300, .burn_in = 600, .seed = 77};

  auto session = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = chain_options,
       .policy = api::ExecutionPolicy::Parallel(3)});
  std::vector<api::ResultHandle> handles;
  for (const char* query : PaperQueries()) {
    handles.push_back(session->Register(query));
  }
  session->Run(20);

  pdb::ParallelOptions parallel;
  parallel.num_chains = 3;
  parallel.samples_per_chain = 20;
  parallel.chain_options = chain_options;
  for (size_t q = 0; q < PaperQueries().size(); ++q) {
    const char* query = PaperQueries()[q];
    ra::PlanPtr plan = sql::PlanQuery(query, fixture.tokens.pdb->db());
    const pdb::QueryAnswer standalone = pdb::EvaluateParallel(
        *fixture.tokens.pdb, *plan, fixture.MakeFactory(), parallel);
    ExpectBitwiseEqual(handles[q].Snapshot().answer, standalone, query);
  }
}

TEST(SessionSharedChainTest, MidRunRegistrationMatchesLateStartedChain) {
  // A query registered after 10 samples must see exactly the marginals a
  // standalone run started at that point in the chain would see: the
  // standalone twin's burn-in is the session's burn-in plus the 10 already
  // taken intervals.
  NerFixture fixture(400);
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 250, .burn_in = 500, .seed = 9};

  auto session = api::Session::Open({.database = fixture.tokens.pdb.get(),
                                     .proposal_factory = fixture.MakeFactory(),
                                     .evaluator = options});
  session->Register(ie::kQuery1);
  session->Run(10);
  api::ResultHandle late = session->Register(ie::kQuery3);
  session->Run(20);
  EXPECT_EQ(late.Snapshot().samples, 20u);

  auto world = fixture.tokens.pdb->Clone();
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery3, world->db());
  ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                     {.proposals_per_batch = 300});
  pdb::MaterializedQueryEvaluator standalone(
      world.get(), &proposal, plan.get(),
      {.steps_per_sample = 250, .burn_in = 500 + 10 * 250, .seed = 9});
  standalone.Run(20);
  ExpectBitwiseEqual(late.Snapshot().answer, standalone.answer(), ie::kQuery3);
}

TEST(SessionSharedChainTest, SharedChainRoutesOnlySubscribedSubtrees) {
  // The session-level union subscription map covers every registered view's
  // scans; per-view routing still skips queries untouched by a round.
  NerFixture fixture(300);
  auto session = api::Session::Open({.database = fixture.tokens.pdb.get(),
                                     .proposal_factory = fixture.MakeFactory(),
                                     .evaluator = {.steps_per_sample = 100,
                                                   .seed = 5}});
  session->Register(ie::kQuery1);
  session->Register(ie::kQuery4);
  session->Run(5);
  const auto& subs = session->subscriptions();
  ASSERT_EQ(subs.size(), 1u);
  // Query 1 scans TOKEN once, Query 4 twice (self-join).
  EXPECT_EQ(subs.at(ie::kTokenTable), 3u);
}

}  // namespace
}  // namespace fgpdb
