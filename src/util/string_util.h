// String helpers: splitting, joining, case conversion, numeric formatting.
#ifndef FGPDB_UTIL_STRING_UTIL_H_
#define FGPDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fgpdb {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (SQL keywords, labels).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string FormatDouble(double value, int digits = 6);

/// Human-readable count, e.g. 1200000 -> "1.2M".
std::string HumanCount(double n);

}  // namespace fgpdb

#endif  // FGPDB_UTIL_STRING_UTIL_H_
