// Tests for the extension components: aggregate answer distributions,
// MCMC diagnostics, BIO-constrained proposals, CSV persistence, and top-k
// answer ranking.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "ie/bio_proposal.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "sql/binder.h"
#include "ie/corpus.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/diagnostics.h"
#include "infer/metropolis_hastings.h"
#include "pdb/aggregate_distribution.h"
#include "storage/csv_io.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace fgpdb {
namespace {

// --- AggregateDistribution ---------------------------------------------------

pdb::QueryAnswer MakeCountAnswer(const std::vector<int64_t>& counts) {
  pdb::QueryAnswer answer;
  for (int64_t c : counts) {
    answer.ObserveSampleContaining({Tuple{Value::Int(c)}});
  }
  return answer;
}

TEST(AggregateDistributionTest, MomentsAndMode) {
  // Samples: 10 x3, 20 x1 -> mean 12.5, mode 10.
  const pdb::QueryAnswer answer = MakeCountAnswer({10, 10, 10, 20});
  pdb::AggregateDistribution dist(answer);
  EXPECT_DOUBLE_EQ(dist.Mean(), 12.5);
  EXPECT_DOUBLE_EQ(dist.Mode(), 10.0);
  EXPECT_DOUBLE_EQ(dist.Variance(), (3 * 6.25 + 56.25) / 4.0);
  EXPECT_EQ(dist.support_size(), 2u);
}

TEST(AggregateDistributionTest, QuantilesAndMass) {
  const pdb::QueryAnswer answer = MakeCountAnswer({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  pdb::AggregateDistribution dist(answer);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(dist.Mean(), 5.5);
  // Values 4,5,6,7 lie within 1.6 of the mean 5.5 -> mass 0.4.
  EXPECT_NEAR(dist.MassWithin(1.6), 0.4, 1e-12);
}

TEST(AggregateDistributionTest, HistogramCoversSupport) {
  const pdb::QueryAnswer answer = MakeCountAnswer({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  pdb::AggregateDistribution dist(answer);
  const auto bins = dist.Histogram(5);
  ASSERT_EQ(bins.size(), 5u);
  double mass = 0.0;
  for (const auto& bin : bins) mass += bin.mass;
  EXPECT_NEAR(mass, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(bins.front().lo, 0.0);
  EXPECT_DOUBLE_EQ(bins.back().hi, 9.0);
}

// --- Diagnostics --------------------------------------------------------------

TEST(DiagnosticsTest, EssOfWhiteNoiseIsNearN) {
  Rng rng(3);
  std::vector<double> series(4000);
  for (auto& x : series) x = rng.Gaussian();
  const double ess = infer::EffectiveSampleSize(series);
  EXPECT_GT(ess, 3000.0);
  EXPECT_LE(ess, 4000.0);
}

TEST(DiagnosticsTest, EssOfCorrelatedChainIsSmall) {
  // AR(1) with strong persistence: ESS ≈ n(1-ρ)/(1+ρ).
  Rng rng(5);
  const double rho = 0.95;
  std::vector<double> series(4000);
  series[0] = rng.Gaussian();
  for (size_t i = 1; i < series.size(); ++i) {
    series[i] = rho * series[i - 1] + std::sqrt(1 - rho * rho) * rng.Gaussian();
  }
  const double ess = infer::EffectiveSampleSize(series);
  const double expected = 4000.0 * (1 - rho) / (1 + rho);  // ~103
  EXPECT_LT(ess, 3 * expected);
  EXPECT_GT(ess, expected / 3);
}

TEST(DiagnosticsTest, EssEdgeCases) {
  EXPECT_DOUBLE_EQ(infer::EffectiveSampleSize({}), 0.0);
  EXPECT_DOUBLE_EQ(infer::EffectiveSampleSize({1.0}), 1.0);
  // Constant series: degenerate, clamped to >= 1.
  EXPECT_GE(infer::EffectiveSampleSize({2.0, 2.0, 2.0, 2.0}), 1.0);
}

TEST(DiagnosticsTest, GelmanRubinNearOneForMixedChains) {
  Rng rng(7);
  std::vector<std::vector<double>> chains(4, std::vector<double>(2000));
  for (auto& chain : chains) {
    for (auto& x : chain) x = rng.Gaussian();
  }
  EXPECT_NEAR(infer::GelmanRubin(chains), 1.0, 0.02);
}

TEST(DiagnosticsTest, GelmanRubinLargeForSeparatedChains) {
  Rng rng(9);
  std::vector<std::vector<double>> chains(2, std::vector<double>(500));
  for (size_t c = 0; c < 2; ++c) {
    for (auto& x : chains[c]) {
      x = rng.Gaussian() + (c == 0 ? -5.0 : 5.0);  // Disjoint modes.
    }
  }
  EXPECT_GT(infer::GelmanRubin(chains), 2.0);
}

TEST(DiagnosticsTest, AutocorrelationBasics) {
  const std::vector<double> series = {1, -1, 1, -1, 1, -1, 1, -1};
  EXPECT_NEAR(infer::Autocorrelation(series, 1), -0.875, 0.01);
  EXPECT_DOUBLE_EQ(infer::Autocorrelation(series, 100), 0.0);
}

// --- BIO-constrained proposal --------------------------------------------------

struct BioFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  BioFixture() {
    const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = 600, .tokens_per_doc = 80, .seed = 91});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }
};

bool IsValidBio(const ie::TokenPdb& tokens, const factor::World& world) {
  for (const auto& doc : tokens.docs) {
    uint32_t prev = ie::kLabelO;
    for (factor::VarId v : doc) {
      if (!ie::ValidTransition(prev, world.Get(v))) return false;
      prev = world.Get(v);
    }
  }
  return true;
}

TEST(BioProposalTest, ValidLabelSetsRespectNeighbors) {
  BioFixture f;
  ie::BioConstrainedProposal proposal(&f.tokens.docs);
  factor::World world(f.tokens.num_tokens());  // All O.
  // With all-O neighbors, I-* labels are invalid, B-*/O are valid.
  const auto& doc = f.tokens.docs[0];
  const auto valid = proposal.ValidLabels(world, doc[1]);
  EXPECT_EQ(valid.size(), 5u);  // O + four B-<T>.
  for (uint32_t y : valid) EXPECT_FALSE(ie::IsInside(y));
  // After B-PER at position 1, position 2 may continue with I-PER.
  world.Set(doc[1], ie::LabelIndex("B-PER"));
  const auto after = proposal.ValidLabels(world, doc[2]);
  EXPECT_NE(std::find(after.begin(), after.end(), ie::LabelIndex("I-PER")),
            after.end());
  EXPECT_EQ(std::find(after.begin(), after.end(), ie::LabelIndex("I-ORG")),
            after.end());
}

TEST(BioProposalTest, ChainStaysInValidBioSpace) {
  BioFixture f;
  ie::BioConstrainedProposal proposal(&f.tokens.docs,
                                      /*proposals_per_batch=*/500);
  auto sampler = f.tokens.pdb->MakeSampler(&proposal, /*seed=*/13);
  for (int round = 0; round < 20; ++round) {
    sampler->Run(2000);
    ASSERT_TRUE(IsValidBio(f.tokens, f.tokens.pdb->world()))
        << "invalid BIO after round " << round;
  }
  f.tokens.pdb->DiscardDeltas();
  // The chain must actually move.
  EXPECT_GT(sampler->num_accepted(), 1000u);
}

TEST(BioProposalTest, FreezingNeighborsPinsInsideLabels) {
  // A variable between B-PER and I-PER can only take PER-compatible labels
  // that keep the next I-PER licensed.
  BioFixture f;
  ie::BioConstrainedProposal proposal(&f.tokens.docs);
  const auto& doc = f.tokens.docs[0];
  factor::World world(f.tokens.num_tokens());
  world.Set(doc[0], ie::LabelIndex("B-PER"));
  world.Set(doc[1], ie::LabelIndex("I-PER"));
  world.Set(doc[2], ie::LabelIndex("I-PER"));
  const auto valid = proposal.ValidLabels(world, doc[1]);
  // y must follow B-PER and license I-PER: only B-PER / I-PER qualify.
  EXPECT_EQ(valid.size(), 2u);
  for (uint32_t y : valid) EXPECT_EQ(ie::LabelType(y), ie::EntityType::kPer);
}

// --- CSV persistence ------------------------------------------------------------

TEST(CsvIoTest, TableRoundTrip) {
  Database db;
  Table* table = testing::MakeEmpTable(&db);
  table->UpdateField(0, 2, Value::String("ann \"the boss\", esq."));
  std::stringstream buffer;
  WriteTableCsv(*table, buffer);
  auto restored = ReadTableCsv("EMP", buffer);
  EXPECT_EQ(restored->schema(), table->schema());
  EXPECT_EQ(restored->size(), table->size());
  EXPECT_EQ(restored->Rows(), table->Rows());
  EXPECT_EQ(restored->LookupByKey(Value::Int(3)), table->LookupByKey(Value::Int(3)));
}

TEST(CsvIoTest, NullAndDoubleFieldsSurvive) {
  Database db;
  Schema schema({Attribute{"A", ValueType::kInt64},
                 Attribute{"B", ValueType::kDouble},
                 Attribute{"C", ValueType::kString}});
  Table* table = db.CreateTable("T", std::move(schema));
  table->Insert(Tuple{Value::Int(1), Value::Double(2.5), Value::Null()});
  table->Insert(Tuple{Value::Null(), Value::Double(-0.125), Value::String("")});
  std::stringstream buffer;
  WriteTableCsv(*table, buffer);
  auto restored = ReadTableCsv("T", buffer);
  EXPECT_EQ(restored->Rows(), table->Rows());
}

TEST(CsvIoTest, DatabaseDirectoryRoundTrip) {
  Database db;
  testing::MakeEmpTable(&db);
  Schema extra({Attribute{"X", ValueType::kString}});
  Table* t2 = db.CreateTable("NOTES", std::move(extra));
  t2->Insert(Tuple{Value::String("hello, world")});

  const std::string dir = ::testing::TempDir() + "/fgpdb_csv_roundtrip";
  std::filesystem::remove_all(dir);
  SaveDatabaseCsv(db, dir);
  auto restored = LoadDatabaseCsv(dir);
  ASSERT_NE(restored->GetTable("EMP"), nullptr);
  ASSERT_NE(restored->GetTable("NOTES"), nullptr);
  EXPECT_EQ(restored->RequireTable("EMP")->Rows(),
            db.RequireTable("EMP")->Rows());
  EXPECT_EQ(restored->RequireTable("NOTES")->Rows(),
            db.RequireTable("NOTES")->Rows());
  std::filesystem::remove_all(dir);
}

// --- Top-k ----------------------------------------------------------------------

TEST(TopKTest, RanksByProbability) {
  pdb::QueryAnswer answer;
  const Tuple a{Value::String("a")};
  const Tuple b{Value::String("b")};
  const Tuple c{Value::String("c")};
  answer.ObserveSampleContaining({a, b, c});
  answer.ObserveSampleContaining({a, b});
  answer.ObserveSampleContaining({a});
  answer.ObserveSampleContaining({a});
  const auto top2 = answer.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, a);
  EXPECT_DOUBLE_EQ(top2[0].second, 1.0);
  EXPECT_EQ(top2[1].first, b);
  EXPECT_DOUBLE_EQ(top2[1].second, 0.5);
  EXPECT_EQ(answer.TopK(10).size(), 3u);
}


// --- Adaptive thinning (paper §4.1) ----------------------------------------------

TEST(AdaptiveThinningTest, KAdjustsTowardTargetEvalFraction) {
  const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 5000, .tokens_per_doc = 100, .seed = 121});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, tokens.pdb->db());
  ie::DocumentBatchProposal proposal(&tokens.docs);
  pdb::EvaluatorOptions options;
  // Start with an absurdly large k: walking dominates, so the controller
  // must shrink k substantially.
  options.steps_per_sample = 1 << 20;
  options.adaptive_thinning = true;
  options.target_eval_fraction = 0.25;
  pdb::MaterializedQueryEvaluator evaluator(tokens.pdb.get(), &proposal,
                                            plan.get(), options);
  evaluator.Run(25);
  EXPECT_LT(evaluator.steps_per_sample(), options.steps_per_sample / 8)
      << "adaptive controller should have shrunk k";
  EXPECT_GE(evaluator.steps_per_sample(), options.min_steps_per_sample);
}

TEST(AdaptiveThinningTest, DisabledKeepsKFixed) {
  const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 1000, .tokens_per_doc = 100, .seed = 123});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, tokens.pdb->db());
  ie::DocumentBatchProposal proposal(&tokens.docs);
  pdb::MaterializedQueryEvaluator evaluator(
      tokens.pdb.get(), &proposal, plan.get(), {.steps_per_sample = 500});
  evaluator.Run(10);
  EXPECT_EQ(evaluator.steps_per_sample(), 500u);
}

}  // namespace
}  // namespace fgpdb
