#include "ie/entity_resolution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/logging.h"

namespace fgpdb {
namespace ie {
namespace {

// Character trigram set (padded) for Jaccard similarity.
std::set<std::string> Trigrams(const std::string& s) {
  std::string padded = "##" + s + "##";
  std::set<std::string> grams;
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    grams.insert(padded.substr(i, 3));
  }
  return grams;
}

double TrigramJaccard(const std::string& a, const std::string& b) {
  const auto ga = Trigrams(a);
  const auto gb = Trigrams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& g : ga) {
    if (gb.count(g) > 0) ++inter;
  }
  const size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::set<std::string> Words(const std::string& s) {
  std::set<std::string> words;
  std::string word;
  for (char c : s + " ") {
    if (c == ' ') {
      if (!word.empty()) words.insert(word);
      word.clear();
    } else {
      word += c;
    }
  }
  return words;
}

// Fraction of the larger mention's words shared with the smaller one —
// "John Smith" vs "J. Smith" share the surname token, a stronger
// coreference signal than character n-grams alone.
double WordOverlap(const std::string& a, const std::string& b) {
  const auto wa = Words(a);
  const auto wb = Words(b);
  if (wa.empty() || wb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& w : wa) {
    if (wb.count(w) > 0) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(std::max(wa.size(), wb.size()));
}

double MentionSimilarity(const std::string& a, const std::string& b) {
  return std::max(TrigramJaccard(a, b), WordOverlap(a, b));
}

}  // namespace

EntityResolutionModel::EntityResolutionModel(std::vector<std::string> mentions,
                                             double scale,
                                             double threshold_shift)
    : mentions_(std::move(mentions)) {
  const size_t n = mentions_.size();
  FGPDB_CHECK_GT(n, 0u);
  affinity_.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double sim = MentionSimilarity(mentions_[i], mentions_[j]);
      const double a = scale * (2.0 * sim - threshold_shift);
      affinity_[i * n + j] = a;
      affinity_[j * n + i] = a;
    }
  }
}

double EntityResolutionModel::LogScoreDelta(const factor::World& world,
                                            const factor::Change& change) const {
  return LogScoreDelta(world, change, &member_scratch_);
}

double EntityResolutionModel::LogScoreDelta(
    const factor::World& world, const factor::Change& change,
    factor::ScoreScratch* scratch) const {
  DeltaScratch* s = scratch != nullptr ? static_cast<DeltaScratch*>(scratch)
                                       : &member_scratch_;
  const size_t n = mentions_.size();
  if (s->is_changed.size() != n) {
    s->is_changed.assign(n, 0);
    s->new_value.resize(n);
  }
  s->changed.clear();
  for (const auto& a : change.assignments) {
    if (!s->is_changed[a.var]) {
      s->is_changed[a.var] = 1;
      s->changed.push_back(a.var);
    }
    s->new_value[a.var] = a.value;  // Duplicate assignments: last one wins.
  }
  std::sort(s->changed.begin(), s->changed.end());

  const auto label_new = [&](size_t v) {
    return s->is_changed[v] ? s->new_value[v]
                            : world.Get(static_cast<factor::VarId>(v));
  };
  // Enumerate the pairs with at least one changed endpoint once each, in
  // ascending (min, max) order — the order the previous std::set-based
  // implementation iterated in, preserving bitwise summation — without
  // materializing the pair set.
  double delta = 0.0;
  const auto add_pair = [&](size_t i, size_t j) {
    const bool same_new = label_new(i) == label_new(j);
    const bool same_old = world.Get(static_cast<factor::VarId>(i)) ==
                          world.Get(static_cast<factor::VarId>(j));
    if (same_new != same_old) {
      delta += (same_new ? 1.0 : -1.0) * affinity_[i * n + j];
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (s->is_changed[i]) {
      for (size_t j = i + 1; j < n; ++j) add_pair(i, j);
    } else {
      // Only pairs whose larger endpoint changed; `changed` is sorted.
      auto it = std::upper_bound(s->changed.begin(), s->changed.end(),
                                 static_cast<factor::VarId>(i));
      for (; it != s->changed.end(); ++it) add_pair(i, *it);
    }
  }
  for (factor::VarId v : s->changed) s->is_changed[v] = 0;
  return delta;
}

bool EntityResolutionModel::ConditionalRow(const factor::World& world,
                                           factor::VarId var, double* out,
                                           factor::ScoreScratch* scratch) const {
  (void)scratch;  // The scatter needs no per-call working memory.
  const size_t n = mentions_.size();
  const uint32_t cvar = world.Get(var);
  std::fill(out, out + n, 0.0);
  const double* row = affinity_.data() + static_cast<size_t>(var) * n;
  // One ascending pass over the partners. A partner co-clustered with `var`
  // loses its affinity in every candidate lane except cvar (moving away
  // breaks the pair); any other partner gains its affinity in exactly the
  // lane of its own cluster id (moving there forms the pair). Per lane this
  // adds the same terms in the same ascending-partner order as the
  // per-candidate LogScoreDelta path, so each row entry is bitwise-equal.
  for (size_t j = 0; j < n; ++j) {
    if (j == var) continue;
    const uint32_t cj = world.Get(static_cast<factor::VarId>(j));
    const double a = row[j];
    if (cj == cvar) {
      for (size_t v = 0; v < n; ++v) out[v] -= a;
    } else {
      out[cj] += a;
    }
  }
  out[cvar] = 0.0;  // Staying put is exactly a no-op, not a rounded sum.
  return true;
}

std::unique_ptr<factor::ScoreScratch> EntityResolutionModel::MakeScratch()
    const {
  return std::make_unique<DeltaScratch>();
}

double EntityResolutionModel::LogScore(const factor::World& world) const {
  const size_t n = mentions_.size();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (world.Get(static_cast<factor::VarId>(i)) ==
          world.Get(static_cast<factor::VarId>(j))) {
        total += Affinity(i, j);
      }
    }
  }
  return total;
}

std::vector<std::vector<size_t>> EntityResolutionModel::Clusters(
    const factor::World& world) const {
  std::map<uint32_t, std::vector<size_t>> by_id;
  for (size_t i = 0; i < mentions_.size(); ++i) {
    by_id[world.Get(static_cast<factor::VarId>(i))].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(by_id.size());
  for (auto& [id, members] : by_id) {
    (void)id;
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

void SplitMergeProposal::Propose(const factor::World& world, Rng& rng,
                                 factor::Change* change, double* log_ratio) {
  *log_ratio = 0.0;
  change->Clear();
  const size_t n = model_.num_mentions();
  if (n < 2) return;

  // Pick an unordered mention pair uniformly.
  const size_t i = rng.UniformInt(n);
  size_t j = rng.UniformInt(n - 1);
  if (j >= i) ++j;

  const uint32_t ci = world.Get(static_cast<factor::VarId>(i));
  const uint32_t cj = world.Get(static_cast<factor::VarId>(j));

  if (ci == cj) {
    // --- Split: j anchors a fresh cluster; other members flip a fair coin.
    members_.clear();
    used_.assign(n, 0);
    for (size_t m = 0; m < n; ++m) {
      used_[world.Get(static_cast<factor::VarId>(m))] = 1;
      if (world.Get(static_cast<factor::VarId>(m)) == ci) members_.push_back(m);
    }
    const size_t s = members_.size();
    if (s < 2) return;  // Cannot split a singleton.
    uint32_t fresh = 0;
    while (fresh < n && used_[fresh]) ++fresh;
    FGPDB_CHECK_LT(fresh, n) << "no free cluster id";  // ≤ n clusters always.
    change->Set(static_cast<factor::VarId>(j), fresh);
    for (size_t m : members_) {
      if (m == i || m == j) continue;
      if (rng.Bernoulli(0.5)) change->Set(static_cast<factor::VarId>(m), fresh);
    }
    // q(merge back)/q(split): the |A||B| pair-choice factors cancel, leaving
    // the (1/2)^(s-2) assignment probability.
    *log_ratio = static_cast<double>(s - 2) * std::log(2.0);
  } else {
    // --- Merge: move all of j's cluster into i's.
    size_t s = 0;
    for (size_t m = 0; m < n; ++m) {
      const uint32_t cm = world.Get(static_cast<factor::VarId>(m));
      if (cm == ci) ++s;
      if (cm == cj) {
        ++s;
        change->Set(static_cast<factor::VarId>(m), ci);
      }
    }
    *log_ratio = -static_cast<double>(s - 2) * std::log(2.0);
  }
}

void SingleMentionMoveProposal::Propose(const factor::World& world, Rng& rng,
                                        factor::Change* change,
                                        double* log_ratio) {
  (void)world;
  *log_ratio = 0.0;
  change->Clear();
  const size_t n = model_.num_mentions();
  const auto var = static_cast<factor::VarId>(rng.UniformInt(n));
  change->Set(var, static_cast<uint32_t>(rng.UniformInt(n)));
}

}  // namespace ie
}  // namespace fgpdb
