#include "infer/metropolis_hastings.h"

#include <cmath>
#include <optional>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace infer {

MetropolisHastings::MetropolisHastings(const factor::Model& model,
                                       factor::World* world,
                                       Proposal* proposal, uint64_t seed)
    : model_(model),
      world_(world),
      proposal_(proposal),
      rng_(seed),
      score_scratch_(model.MakeScratch()) {
  FGPDB_CHECK(world_ != nullptr);
  FGPDB_CHECK(proposal_ != nullptr);
}

bool MetropolisHastings::Step() {
  // Phase timing is opt-in (set_phase_totals); the detached path is the
  // untimed template instantiation — no clock reads at all.
  return phase_totals_ != nullptr ? StepImpl<true>() : StepImpl<false>();
}

size_t MetropolisHastings::Step(size_t n) {
  return phase_totals_ != nullptr ? StepBatchImpl<true>(n)
                                  : StepBatchImpl<false>(n);
}

template <bool kTimed>
bool MetropolisHastings::StepImpl() {
  std::optional<Stopwatch> phase_timer;
  if constexpr (kTimed) {
    phase_timer.emplace();
    ++phase_totals_->steps;
  }

  ++num_proposed_;
  double log_proposal_ratio = 0.0;
  proposal_->Propose(*world_, rng_, &change_buf_, &log_proposal_ratio);
  const factor::Change& change = change_buf_;
  if constexpr (kTimed) {
    phase_totals_->propose_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (change.empty()) {
    // Self-transition: counted as accepted (the chain stays put).
    ++num_accepted_;
    return true;
  }
  const double log_model_ratio =
      model_.LogScoreDelta(*world_, change, score_scratch_.get());
  const double log_alpha = log_model_ratio + log_proposal_ratio;
  bool accept = log_alpha >= 0.0;
  if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
  if constexpr (kTimed) {
    phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (!accept) return false;

  applied_scratch_.clear();
  world_->Apply(change, &applied_scratch_);
  // Drop no-op assignments (value unchanged) before notifying listeners so
  // delta buffers only see real modifications.
  auto& applied = applied_scratch_;
  applied.erase(std::remove_if(applied.begin(), applied.end(),
                               [](const factor::AppliedAssignment& a) {
                                 return a.old_value == a.new_value;
                               }),
                applied.end());
  ++num_accepted_;
  if constexpr (kTimed) {
    phase_totals_->apply_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (!applied.empty()) {
    for (const auto& listener : listeners_) listener(applied);
  }
#ifndef NDEBUG
  // Hot-block discipline: the shadow must agree with the world on every
  // variable this step wrote. Only own writes are examined — a full-world
  // scan would race with sibling shard chains advancing other shards.
  if (const uint8_t* shadow = world_->label_shadow()) {
    for (const auto& a : applied) {
      FGPDB_CHECK_EQ(static_cast<uint32_t>(shadow[a.var]), world_->Get(a.var))
          << "label shadow diverged from world values";
    }
  }
#endif
  if constexpr (kTimed) {
    phase_totals_->mirror_seconds += phase_timer->ElapsedSeconds();
    ++phase_totals_->mirror_flushes;
  }
  return true;
}

template <bool kTimed>
size_t MetropolisHastings::StepBatchImpl(size_t n) {
  // Listener notifications carry concatenated per-step applied records, so
  // a flush is exactly what the same steps would have reported one at a
  // time: same assignments, same order, same coalesced deltas. Without
  // listeners the applied stream has no consumer and is not recorded.
  const bool record = !listeners_.empty();
  batch_applied_.clear();
  size_t accepted = 0;

  std::optional<Stopwatch> phase_timer;
  if constexpr (kTimed) phase_timer.emplace();

  auto flush = [&]() {
    if (batch_applied_.empty()) return;
    if constexpr (kTimed) phase_timer->Reset();
    for (const auto& listener : listeners_) listener(batch_applied_);
#ifndef NDEBUG
    // Hot-block discipline: shadow/world agreement on every variable this
    // flush carried. Own writes only — a full-world scan would race with
    // sibling shard chains advancing other shards.
    if (const uint8_t* shadow = world_->label_shadow()) {
      for (const auto& a : batch_applied_) {
        FGPDB_CHECK_EQ(static_cast<uint32_t>(shadow[a.var]),
                       world_->Get(a.var))
            << "label shadow diverged from world values";
      }
    }
#endif
    batch_applied_.clear();
    if constexpr (kTimed) {
      phase_totals_->mirror_seconds += phase_timer->ElapsedSeconds();
      ++phase_totals_->mirror_flushes;
    }
  };

  // Row-driven Gibbs: for a proposal that IS the single-site Gibbs kernel,
  // fuse propose/score/accept — draw the site, fill the conditional row
  // once, sample the candidate straight from it, and reuse row[new] as the
  // acceptance's model ratio (legal by the ConditionalRow contract: each
  // lane is bitwise the per-candidate LogScoreDelta, which is exactly what
  // the two-call reference path would recompute). Draw order and FP
  // arithmetic replicate GibbsProposal::Propose + the generic loop below
  // term-for-term, so the trajectory is bitwise-identical to row_gibbs_
  // == false; only the second scoring pass disappears.
  if (row_gibbs_ && proposal_->IsSingleSiteGibbs() &&
      model_.num_variables() > 0) {
    for (size_t i = 0; i < n; ++i) {
      if constexpr (kTimed) {
        phase_timer->Reset();
        ++phase_totals_->steps;
      }
      ++num_proposed_;
      const factor::VarId var = proposal_->DrawGibbsSite(*world_, rng_);
      if (prefetch_) {
        // Warm step i+1's site while step i scores. The stream distance to
        // the next site draw is 1 draw (the conditional's Categorical) or
        // 2 (+ the acceptance draw, taken only when FP round-off pushes
        // log_alpha below 0), so peek cloned rngs down BOTH branches; the
        // mispredicted one costs a harmless extra prefetch and the real
        // stream is never advanced.
        Rng peek1 = rng_;
        peek1.Next();
        model_.PrefetchSite(*world_, proposal_->DrawGibbsSite(*world_, peek1));
        Rng peek2 = rng_;
        peek2.Next();
        peek2.Next();
        model_.PrefetchSite(*world_, proposal_->DrawGibbsSite(*world_, peek2));
        // Site i's record was prefetched one step ago; now chase it one
        // level deeper (weight row, partner span) before scoring.
        model_.PrefetchSiteOperands(*world_, var);
      }
      const size_t k = model_.domain_size(var);
      row_buf_.resize(k);
      const uint32_t old_value = world_->Get(var);
      if constexpr (kTimed) {
        phase_totals_->propose_seconds += phase_timer->ElapsedSeconds();
        phase_timer->Reset();
      }
      if (!model_.ConditionalRow(*world_, var, row_buf_.data(),
                                 score_scratch_.get())) {
        // Per-candidate fill, exactly as GibbsProposal's fallback — the
        // deltas are deterministic in (world, change), so the row matches
        // what the reference path computes bitwise.
        std::fill(row_buf_.begin(), row_buf_.end(), 0.0);
        for (uint32_t v = 0; v < k; ++v) {
          if (v == old_value) continue;
          fused_change_.Clear();
          fused_change_.Set(var, v);
          row_buf_[v] = model_.LogScoreDelta(*world_, fused_change_,
                                             score_scratch_.get());
        }
      }
      // Allocation-free replica of Rng::LogCategorical: same FP ops in the
      // same order, same single Uniform() draw.
      const double lse = LogSumExp(row_buf_);
      prob_buf_.resize(k);
      for (size_t v = 0; v < k; ++v) {
        prob_buf_[v] = std::exp(row_buf_[v] - lse);
      }
      double total = 0.0;
      for (const double w : prob_buf_) total += w;
      FGPDB_CHECK_GT(total, 0.0);
      const double target = rng_.Uniform() * total;
      double cum = 0.0;
      auto new_value = static_cast<uint32_t>(k - 1);
      for (size_t v = 0; v < k; ++v) {
        cum += prob_buf_[v];
        if (target < cum) {
          new_value = static_cast<uint32_t>(v);
          break;
        }
      }
      if (new_value == old_value) {
        // Self-transition: the reference path emits an empty Change, which
        // the step loop accepts without an acceptance draw.
        ++num_accepted_;
        ++accepted;
        if constexpr (kTimed) {
          phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
        }
        continue;
      }
      // GibbsProposal's proposal-ratio correction plus the generic loop's
      // acceptance, term-for-term. log_alpha is ~0 but not exactly 0 in
      // FP, so the acceptance draw is consumed exactly when the reference
      // consumes it.
      const double log_q_forward = row_buf_[new_value] - lse;
      const double log_q_backward = row_buf_[old_value] - lse;
      const double log_proposal_ratio = log_q_backward - log_q_forward;
      const double log_alpha = row_buf_[new_value] + log_proposal_ratio;
      bool accept = log_alpha >= 0.0;
      if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
      if constexpr (kTimed) {
        phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
        phase_timer->Reset();
      }
      if (!accept) continue;
      world_->Set(var, new_value);
      if (record) batch_applied_.push_back({var, old_value, new_value});
      ++num_accepted_;
      ++accepted;
      if constexpr (kTimed) {
        phase_totals_->apply_seconds += phase_timer->ElapsedSeconds();
      }
      if (batch_applied_.size() >= mirror_batch_limit_) flush();
    }
    flush();
    return accepted;
  }

  for (size_t i = 0; i < n; ++i) {
    if constexpr (kTimed) {
      phase_timer->Reset();
      ++phase_totals_->steps;
    }
    ++num_proposed_;
    double log_proposal_ratio = 0.0;
    proposal_->Propose(*world_, rng_, &change_buf_, &log_proposal_ratio);
    if constexpr (kTimed) {
      phase_totals_->propose_seconds += phase_timer->ElapsedSeconds();
      phase_timer->Reset();
    }
    if (change_buf_.empty()) {
      ++num_accepted_;
      ++accepted;
      continue;
    }
    const double log_model_ratio =
        model_.LogScoreDelta(*world_, change_buf_, score_scratch_.get());
    const double log_alpha = log_model_ratio + log_proposal_ratio;
    bool accept = log_alpha >= 0.0;
    if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
    if constexpr (kTimed) {
      phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
      phase_timer->Reset();
    }
    if (!accept) continue;

    // Apply in assignment order, keeping only real modifications — the
    // in-place equivalent of World::Apply + the no-op filter, appending
    // straight onto the batch buffer.
    for (const auto& a : change_buf_.assignments) {
      const uint32_t old_value = world_->Get(a.var);
      world_->Set(a.var, a.value);
      if (record && old_value != a.value) {
        batch_applied_.push_back({a.var, old_value, a.value});
      }
    }
    ++num_accepted_;
    ++accepted;
    if constexpr (kTimed) {
      phase_totals_->apply_seconds += phase_timer->ElapsedSeconds();
    }
    if (batch_applied_.size() >= mirror_batch_limit_) flush();
  }
  flush();
  return accepted;
}

}  // namespace infer
}  // namespace fgpdb
