// Binder-level algebraic rewrites:
//
//   * SimplifyExpr — constant folding of literal comparisons / arithmetic /
//     connectives (exact w.r.t. runtime semantics, including NULL
//     collapsing) and boolean-context collapses of TRUE AND x / FALSE OR x.
//   * OR-of-equalities join extraction — `a.k = b.k OR a.k = b.j` becomes a
//     disjunctive hash join (JoinKeyAlternative list) instead of a filtered
//     Cartesian product, for both the executor and the incremental engine.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "view/incremental.h"

namespace fgpdb {
namespace {

using sql::AstExprPtr;
using sql::AstKind;

// Parses a one-table statement and returns its simplified WHERE tree.
AstExprPtr SimplifiedWhere(const std::string& condition) {
  sql::SelectStatement stmt = sql::Parse("SELECT X FROM T WHERE " + condition);
  return sql::SimplifyExpr(stmt.where->Clone(), /*boolean_context=*/true);
}

TEST(SimplifyExprTest, TrueAndCollapsesToOtherSide) {
  AstExprPtr e = SimplifiedWhere("1 = 1 AND X > 2");
  ASSERT_EQ(e->kind, AstKind::kCompare);
  EXPECT_EQ(e->compare_op, ra::CompareOp::kGt);
}

TEST(SimplifyExprTest, FalseOrCollapsesToOtherSide) {
  AstExprPtr e = SimplifiedWhere("2 < 1 OR X > 2");
  ASSERT_EQ(e->kind, AstKind::kCompare);
  EXPECT_EQ(e->compare_op, ra::CompareOp::kGt);
}

TEST(SimplifyExprTest, FalseAndShortCircuitsWholeConjunction) {
  AstExprPtr e = SimplifiedWhere("1 = 2 AND X > 2");
  ASSERT_EQ(e->kind, AstKind::kLiteral);
  EXPECT_EQ(e->literal, Value::Int(0));
}

TEST(SimplifyExprTest, TrueOrShortCircuitsWholeDisjunction) {
  AstExprPtr e = SimplifiedWhere("TRUE OR X = 3");
  ASSERT_EQ(e->kind, AstKind::kLiteral);
  EXPECT_EQ(e->literal, Value::Int(1));
}

TEST(SimplifyExprTest, NotOfLiteralFolds) {
  AstExprPtr e = SimplifiedWhere("NOT TRUE OR X = 1");
  ASSERT_EQ(e->kind, AstKind::kCompare);
  EXPECT_EQ(e->compare_op, ra::CompareOp::kEq);
}

TEST(SimplifyExprTest, LiteralArithmeticFoldsInsideComparisons) {
  AstExprPtr e = SimplifiedWhere("X > 2 * 3 + 1");
  ASSERT_EQ(e->kind, AstKind::kCompare);
  ASSERT_EQ(e->rhs->kind, AstKind::kLiteral);
  EXPECT_EQ(e->rhs->literal, Value::Int(7));
}

TEST(SimplifyExprTest, NullComparisonFoldsToFalseLikeRuntime) {
  // Comparisons collapse NULL operands to false (SQL three-valued logic
  // collapsed) — folding must match, turning the conjunct into FALSE.
  AstExprPtr e = SimplifiedWhere("1 < NULL AND X = 2");
  ASSERT_EQ(e->kind, AstKind::kLiteral);
  EXPECT_EQ(e->literal, Value::Int(0));
}

TEST(SimplifyExprTest, ValueContextKeepsCollapseExact) {
  // In value position TRUE AND x may NOT collapse to x (the runtime yields
  // Int(0/1)); both-literal connectives still fold exactly.
  sql::SelectStatement stmt = sql::Parse("SELECT TRUE AND X FROM T");
  AstExprPtr e =
      sql::SimplifyExpr(stmt.items[0].expr->Clone(), /*boolean_context=*/false);
  EXPECT_EQ(e->kind, AstKind::kLogical);

  sql::SelectStatement folded = sql::Parse("SELECT TRUE AND FALSE FROM T");
  AstExprPtr f = sql::SimplifyExpr(folded.items[0].expr->Clone(), false);
  ASSERT_EQ(f->kind, AstKind::kLiteral);
  EXPECT_EQ(f->literal, Value::Int(0));
}

TEST(SimplifyExprTest, CountIfArgumentSimplifiesInBooleanContext) {
  sql::SelectStatement stmt =
      sql::Parse("SELECT COUNT_IF(TRUE AND X = 1) FROM T GROUP BY Y");
  AstExprPtr e = sql::SimplifyExpr(stmt.items[0].expr->Clone(), false);
  ASSERT_EQ(e->kind, AstKind::kAggregate);
  EXPECT_EQ(e->agg_argument->kind, AstKind::kCompare);
}

// --- End-to-end through Bind -------------------------------------------------

Database MakeTwoTables() {
  Database db;
  Table* a = db.CreateTable(
      "A", Schema({Attribute{"K", ValueType::kInt64},
                   Attribute{"X", ValueType::kInt64}}));
  Table* b = db.CreateTable(
      "B", Schema({Attribute{"K", ValueType::kInt64},
                   Attribute{"J", ValueType::kInt64}}));
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    a->Insert(Tuple{Value::Int(static_cast<int64_t>(rng.UniformInt(12))),
                    Value::Int(static_cast<int64_t>(rng.UniformInt(6)))});
    b->Insert(Tuple{Value::Int(static_cast<int64_t>(rng.UniformInt(12))),
                    Value::Int(static_cast<int64_t>(rng.UniformInt(12)))});
  }
  return db;
}

TEST(BindSimplifyTest, TautologicalWhereDisappears) {
  Database db = MakeTwoTables();
  ra::PlanPtr plan = sql::PlanQuery("SELECT K FROM A WHERE 1 = 1", db);
  EXPECT_EQ(plan->ToString().find("Select"), std::string::npos)
      << plan->ToString();
}

TEST(BindSimplifyTest, FoldedSelectItemKeepsOriginalName) {
  Database db = MakeTwoTables();
  ra::PlanPtr plan = sql::PlanQuery("SELECT 1 + 2 FROM A", db);
  EXPECT_EQ(plan->output_schema().attributes()[0].name, "(1 + 2)");
  const std::vector<Tuple> rows = ra::Execute(*plan, db);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].at(0), Value::Int(3));
}

// The extractable OR and its un-extractable double-negated twin (NOT NOT
// keeps the disjunction out of the conjunct classifier, reproducing the old
// filtered-cross-product plan) — the oracle for both executor and views.
constexpr const char* kOrJoinSql =
    "SELECT A.X, B.J FROM A, B WHERE A.K = B.K OR A.K = B.J";
constexpr const char* kOrJoinOracleSql =
    "SELECT A.X, B.J FROM A, B WHERE NOT NOT (A.K = B.K OR A.K = B.J)";

TEST(OrJoinExtractionTest, ProducesDisjunctiveJoinNotCrossProduct) {
  Database db = MakeTwoTables();
  ra::PlanPtr plan = sql::PlanQuery(kOrJoinSql, db);
  EXPECT_NE(plan->ToString().find("HashJoinAny"), std::string::npos)
      << plan->ToString();
  EXPECT_EQ(plan->ToString().find("CrossProduct"), std::string::npos)
      << plan->ToString();

  ra::PlanPtr oracle = sql::PlanQuery(kOrJoinOracleSql, db);
  EXPECT_NE(oracle->ToString().find("CrossProduct"), std::string::npos)
      << oracle->ToString();
}

TEST(OrJoinExtractionTest, ExecutorMatchesFilteredCrossProduct) {
  Database db = MakeTwoTables();
  ra::PlanPtr plan = sql::PlanQuery(kOrJoinSql, db);
  ra::PlanPtr oracle = sql::PlanQuery(kOrJoinOracleSql, db);
  view::DeltaMultiset got, want;
  for (const Tuple& t : ra::Execute(*plan, db)) got.Add(t, 1);
  for (const Tuple& t : ra::Execute(*oracle, db)) want.Add(t, 1);
  EXPECT_EQ(got, want);
}

TEST(OrJoinExtractionTest, ConjunctiveKeysFoldIntoEveryAlternative) {
  Database db = MakeTwoTables();
  ra::PlanPtr plan = sql::PlanQuery(
      "SELECT A.X FROM A, B WHERE A.K = B.K AND (A.X = B.J OR A.K = B.J)", db);
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("HashJoinAny"), std::string::npos) << rendered;
  // Both alternatives carry the conjunctive K=K pair plus their disjunct.
  ra::PlanPtr oracle = sql::PlanQuery(
      "SELECT A.X FROM A, B WHERE A.K = B.K AND "
      "NOT NOT (A.X = B.J OR A.K = B.J)",
      db);
  view::DeltaMultiset got, want;
  for (const Tuple& t : ra::Execute(*plan, db)) got.Add(t, 1);
  for (const Tuple& t : ra::Execute(*oracle, db)) want.Add(t, 1);
  EXPECT_EQ(got, want);
}

TEST(OrJoinExtractionTest, SameTableDisjunctFallsBackToResidual) {
  Database db = MakeTwoTables();
  // A.K = A.X cannot key a join; the whole conjunct must stay a filter.
  ra::PlanPtr plan = sql::PlanQuery(
      "SELECT A.X FROM A, B WHERE A.K = B.K OR A.K = A.X", db);
  EXPECT_EQ(plan->ToString().find("HashJoinAny"), std::string::npos)
      << plan->ToString();
}

// Streams random row rewrites through incrementally-maintained views of the
// extracted plan and the oracle plan; contents must stay identical.
TEST(OrJoinExtractionTest, IncrementalMaintenanceMatchesOracle) {
  Database db = MakeTwoTables();
  ra::PlanPtr plan = sql::PlanQuery(kOrJoinSql, db);
  ra::PlanPtr oracle = sql::PlanQuery(kOrJoinOracleSql, db);
  view::MaterializedView maintained(*plan);
  view::MaterializedView reference(*oracle);
  maintained.Initialize(db);
  reference.Initialize(db);
  EXPECT_EQ(maintained.contents(), reference.contents());

  // Shadow contents per table drive the delta stream.
  auto snapshot = [&](const char* name) {
    std::vector<Tuple> rows;
    db.RequireTable(name)->Scan(
        [&](RowId, const Tuple& t) { rows.push_back(t); });
    return rows;
  };
  std::vector<Tuple> a_rows = snapshot("A");
  std::vector<Tuple> b_rows = snapshot("B");

  Rng rng(99);
  for (int round = 0; round < 80; ++round) {
    view::DeltaSet deltas;
    for (int change = 0; change < 3; ++change) {
      const bool pick_a = rng.UniformInt(2) == 0;
      std::vector<Tuple>& rows = pick_a ? a_rows : b_rows;
      const size_t i = static_cast<size_t>(rng.UniformInt(rows.size()));
      Tuple updated{Value::Int(static_cast<int64_t>(rng.UniformInt(12))),
                    Value::Int(static_cast<int64_t>(rng.UniformInt(12)))};
      view::DeltaMultiset& delta = deltas.ForTable(pick_a ? "A" : "B");
      delta.Add(rows[i], -1);
      delta.Add(updated, 1);
      rows[i] = updated;
    }
    maintained.Apply(deltas);
    reference.Apply(deltas);
    ASSERT_EQ(maintained.contents(), reference.contents()) << "round " << round;
  }
}

TEST(OrJoinExtractionTest, ThreeTableDisjunctsAcrossDifferentLeftTables) {
  Database db = MakeTwoTables();
  Table* c = db.CreateTable(
      "C", Schema({Attribute{"X", ValueType::kInt64},
                   Attribute{"Y", ValueType::kInt64}}));
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    c->Insert(Tuple{Value::Int(static_cast<int64_t>(rng.UniformInt(6))),
                    Value::Int(static_cast<int64_t>(rng.UniformInt(12)))});
  }
  const char* extracted =
      "SELECT A.X FROM A, B, C WHERE A.K = B.K AND "
      "(A.X = C.X OR B.J = C.Y)";
  const char* reference =
      "SELECT A.X FROM A, B, C WHERE A.K = B.K AND "
      "NOT NOT (A.X = C.X OR B.J = C.Y)";
  ra::PlanPtr plan = sql::PlanQuery(extracted, db);
  EXPECT_NE(plan->ToString().find("HashJoinAny"), std::string::npos)
      << plan->ToString();
  ra::PlanPtr oracle = sql::PlanQuery(reference, db);
  view::DeltaMultiset got, want;
  for (const Tuple& t : ra::Execute(*plan, db)) got.Add(t, 1);
  for (const Tuple& t : ra::Execute(*oracle, db)) want.Add(t, 1);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace fgpdb
