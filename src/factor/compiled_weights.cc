#include "factor/compiled_weights.h"

#include "util/logging.h"

namespace fgpdb {
namespace factor {

size_t CompiledWeights::AddTable(uint32_t rows, uint32_t cols,
                                 std::vector<FeatureFn> terms) {
  FGPDB_CHECK_GT(rows, 0u);
  FGPDB_CHECK_GT(cols, 0u);
  FGPDB_CHECK(!terms.empty());
  Table table;
  table.rows = rows;
  table.cols = cols;
  table.terms = std::move(terms);
  table.values.assign(static_cast<size_t>(rows) * cols, 0.0);
  tables_.push_back(std::move(table));
  // New tables are zero-filled and untracked: force a rebuild on the next
  // EnsureFresh even if one already ran for the current version.
  built_version_.store(0, std::memory_order_release);
  return tables_.size() - 1;
}

bool CompiledWeights::EnsureFresh(const Parameters& params) {
  if (built_version_.load(std::memory_order_acquire) == params.version()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  // Another thread may have rebuilt while we waited on the lock.
  if (built_version_.load(std::memory_order_relaxed) == params.version()) {
    return false;
  }
  Rebuild(params);
  built_version_.store(params.version(), std::memory_order_release);
  return true;
}

void CompiledWeights::Rebuild(const Parameters& params) {
  for (Table& table : tables_) {
    double* out = table.values.data();
    for (uint32_t i = 0; i < table.rows; ++i) {
      for (uint32_t j = 0; j < table.cols; ++j) {
        // Left-to-right term sum seeded with the first term: the exact
        // addition order (and therefore the exact double, signed zeros
        // included) the naive per-factor Get() scoring computes.
        double value = params.Get(table.terms[0](i, j));
        for (size_t t = 1; t < table.terms.size(); ++t) {
          value += params.Get(table.terms[t](i, j));
        }
        *out++ = value;
      }
    }
  }
}

}  // namespace factor
}  // namespace fgpdb
