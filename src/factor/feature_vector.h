// Sparse feature vectors and the parameter (weight) store.
//
// Factors in log-linear models score as ψ(x,y) = exp(φ(x,y)·θ) (paper §3.1).
// Features are identified by 64-bit hashed ids; SampleRank (src/learn)
// updates weights through the same ids, so templates only have to emit
// feature deltas.
#ifndef FGPDB_FACTOR_FEATURE_VECTOR_H_
#define FGPDB_FACTOR_FEATURE_VECTOR_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace fgpdb {
namespace factor {

using FeatureId = uint64_t;

/// Stable feature id from a template name and up to three integer roles
/// (e.g. ("emission", string_id, label) or ("transition", from, to)).
inline FeatureId MakeFeatureId(std::string_view space, uint64_t a = 0,
                               uint64_t b = 0, uint64_t c = 0) {
  uint64_t h = HashString(space);
  h = HashCombine(h, Mix64(a ^ 0x9e3779b97f4a7c15ULL));
  h = HashCombine(h, Mix64(b ^ 0xc2b2ae3d27d4eb4fULL));
  h = HashCombine(h, Mix64(c ^ 0x165667b19e3779f9ULL));
  return h;
}

/// Sparse vector of (feature id, value); duplicate ids are allowed and are
/// summed by consumers.
class SparseVector {
 public:
  void Add(FeatureId id, double value) {
    if (value != 0.0) entries_.push_back({id, value});
  }

  void Clear() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  const std::vector<std::pair<FeatureId, double>>& entries() const {
    return entries_;
  }

  /// Appends all of `other` scaled by `scale` (e.g. -1 for "old" features).
  void AddScaled(const SparseVector& other, double scale) {
    for (const auto& [id, value] : other.entries_) {
      Add(id, value * scale);
    }
  }

  /// Collapses duplicate ids (sums values, drops zeros).
  void Consolidate();

 private:
  std::vector<std::pair<FeatureId, double>> entries_;
};

/// Weight store θ. Reads of unknown features return 0 so models can be
/// scored before training.
class Parameters {
 public:
  double Get(FeatureId id) const {
    const auto it = weights_.find(id);
    return it == weights_.end() ? 0.0 : it->second;
  }

  void Set(FeatureId id, double value) { weights_[id] = value; }

  void Update(FeatureId id, double delta) { weights_[id] += delta; }

  /// θ += scale * features (a perceptron step).
  void UpdateSparse(const SparseVector& features, double scale);

  /// φ·θ.
  double Dot(const SparseVector& features) const;

  size_t size() const { return weights_.size(); }

  /// L2 norm of the weight vector (diagnostics).
  double Norm() const;

 private:
  std::unordered_map<FeatureId, double> weights_;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_FEATURE_VECTOR_H_
