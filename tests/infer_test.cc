// Inference tests: exact enumeration, forward-backward, and the MCMC
// convergence guarantees the paper's query evaluation rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "infer/exact.h"
#include "infer/forward_backward.h"
#include "infer/marginal_estimator.h"
#include "infer/metropolis_hastings.h"
#include "infer/proposal.h"

namespace fgpdb {
namespace infer {
namespace {

using factor::Domain;
using factor::FactorGraph;
using factor::TableFactor;
using factor::VarId;
using factor::World;

FactorGraph MakeTwoVarGraph() {
  // p(y0,y1) ∝ exp(u0[y0] + u1[y1] + pair[y0][y1]), 2x2.
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(2));
  graph.AddVariable(domain, "y0");
  graph.AddVariable(domain, "y1");
  graph.AddFactor(std::make_unique<TableFactor>(
      std::vector<VarId>{0}, std::vector<size_t>{2},
      std::vector<double>{0.0, 1.0}));
  graph.AddFactor(std::make_unique<TableFactor>(
      std::vector<VarId>{1}, std::vector<size_t>{2},
      std::vector<double>{0.5, 0.0}));
  graph.AddFactor(std::make_unique<TableFactor>(
      std::vector<VarId>{0, 1}, std::vector<size_t>{2, 2},
      std::vector<double>{1.0, 0.0, 0.0, 1.0}));  // Attractive coupling.
  return graph;
}

TEST(ExactInferenceTest, MatchesHandComputation) {
  FactorGraph graph = MakeTwoVarGraph();
  const ExactResult result = ExactInference(graph);
  // Unnormalized scores: (0,0)=e^{1.5}, (0,1)=e^{0}, (1,0)=e^{1.5}, (1,1)=e^{2}.
  const double z = std::exp(1.5) + std::exp(0.0) + std::exp(1.5) + std::exp(2.0);
  EXPECT_NEAR(result.log_partition, std::log(z), 1e-12);
  EXPECT_NEAR(result.marginals[0][1], (std::exp(1.5) + std::exp(2.0)) / z,
              1e-12);
  EXPECT_NEAR(result.marginals[1][0], (std::exp(1.5) + std::exp(1.5)) / z,
              1e-12);
  // Marginals sum to one.
  EXPECT_NEAR(result.marginals[0][0] + result.marginals[0][1], 1.0, 1e-12);
  // World probabilities enumerate in mixed-radix order.
  ASSERT_EQ(result.world_probabilities.size(), 4u);
  EXPECT_NEAR(result.world_probabilities[3], std::exp(2.0) / z, 1e-12);
}

TEST(ExactInferenceTest, WorldProbability) {
  FactorGraph graph = MakeTwoVarGraph();
  World w = graph.MakeWorld();
  w.Set(0, 1);
  w.Set(1, 1);
  const double z = std::exp(1.5) + 1.0 + std::exp(1.5) + std::exp(2.0);
  EXPECT_NEAR(ExactWorldProbability(graph, w), std::exp(2.0) / z, 1e-12);
}

TEST(ExactInferenceTest, TooManyWorldsIsFatal) {
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(10));
  for (int i = 0; i < 10; ++i) graph.AddVariable(domain);
  EXPECT_DEATH(ExactInference(graph, /*max_worlds=*/1000), "too large");
}

TEST(ForwardBackwardTest, MatchesBruteForceOnChain) {
  // 4-position chain, 3 labels, random potentials.
  const size_t n = 4, labels = 3;
  Rng rng(99);
  ChainPotentials potentials;
  potentials.node.assign(n, std::vector<double>(labels));
  potentials.edge.assign(labels, std::vector<double>(labels));
  for (auto& row : potentials.node) {
    for (auto& x : row) x = rng.Gaussian();
  }
  for (auto& row : potentials.edge) {
    for (auto& x : row) x = rng.Gaussian();
  }

  // Equivalent explicit factor graph.
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(labels));
  for (size_t i = 0; i < n; ++i) graph.AddVariable(domain);
  for (size_t i = 0; i < n; ++i) {
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i)}, std::vector<size_t>{labels},
        potentials.node[i]));
  }
  std::vector<double> edge_flat;
  for (const auto& row : potentials.edge) {
    edge_flat.insert(edge_flat.end(), row.begin(), row.end());
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i), static_cast<VarId>(i + 1)},
        std::vector<size_t>{labels, labels}, edge_flat));
  }

  const ChainResult fb = ForwardBackward(potentials);
  const ExactResult exact = ExactInference(graph);
  EXPECT_NEAR(fb.log_partition, exact.log_partition, 1e-9);
  for (size_t t = 0; t < n; ++t) {
    for (size_t y = 0; y < labels; ++y) {
      EXPECT_NEAR(fb.marginals[t][y], exact.marginals[t][y], 1e-9)
          << "position " << t << " label " << y;
    }
  }
}

TEST(ForwardBackwardTest, ViterbiFindsArgmaxWorld) {
  ChainPotentials potentials;
  potentials.node = {{0.0, 2.0}, {1.0, 0.0}, {0.0, 1.0}};
  potentials.edge = {{0.5, 0.0}, {0.0, 0.5}};  // Prefer staying.
  const auto path = ViterbiDecode(potentials);
  ASSERT_EQ(path.size(), 3u);
  // Enumerate all 8 paths and verify Viterbi's is maximal.
  double best = -1e300;
  std::vector<size_t> best_path;
  for (size_t a = 0; a < 2; ++a) {
    for (size_t b = 0; b < 2; ++b) {
      for (size_t c = 0; c < 2; ++c) {
        const double score = potentials.node[0][a] + potentials.node[1][b] +
                             potentials.node[2][c] + potentials.edge[a][b] +
                             potentials.edge[b][c];
        if (score > best) {
          best = score;
          best_path = {a, b, c};
        }
      }
    }
  }
  EXPECT_EQ(path, best_path);
}

TEST(MetropolisHastingsTest, ConvergesToExactMarginals) {
  FactorGraph graph = MakeTwoVarGraph();
  World world = graph.MakeWorld();
  UniformSingleVariableProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, /*seed=*/5);
  MarginalEstimator estimator({2, 2});
  sampler.Run(2000);  // Burn-in.
  for (int i = 0; i < 40000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }
  const ExactResult exact = ExactInference(graph);
  for (size_t v = 0; v < 2; ++v) {
    for (uint32_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(estimator.Estimate(static_cast<VarId>(v), k),
                  exact.marginals[v][k], 0.02)
          << "var " << v << " value " << k;
    }
  }
}

TEST(MetropolisHastingsTest, GibbsProposalNeverRejects) {
  FactorGraph graph = MakeTwoVarGraph();
  World world = graph.MakeWorld();
  GibbsProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, /*seed=*/6);
  sampler.Run(5000);
  EXPECT_DOUBLE_EQ(sampler.acceptance_rate(), 1.0);
}

TEST(MetropolisHastingsTest, GibbsConvergesToExactMarginals) {
  FactorGraph graph = MakeTwoVarGraph();
  World world = graph.MakeWorld();
  GibbsProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, /*seed=*/7);
  MarginalEstimator estimator({2, 2});
  sampler.Run(1000);
  for (int i = 0; i < 30000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }
  const ExactResult exact = ExactInference(graph);
  EXPECT_NEAR(estimator.Estimate(0, 1), exact.marginals[0][1], 0.02);
  EXPECT_NEAR(estimator.Estimate(1, 1), exact.marginals[1][1], 0.02);
}

TEST(MetropolisHastingsTest, ListenersSeeOnlyRealChanges) {
  FactorGraph graph = MakeTwoVarGraph();
  World world = graph.MakeWorld();
  UniformSingleVariableProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, /*seed=*/8);
  size_t notified = 0;
  sampler.AddListener([&](const std::vector<factor::AppliedAssignment>& a) {
    for (const auto& x : a) {
      EXPECT_NE(x.old_value, x.new_value);
      ++notified;
    }
  });
  sampler.Run(2000);
  EXPECT_GT(notified, 0u);
  EXPECT_LE(notified, sampler.num_accepted());
}

TEST(MarginalEstimatorTest, CountsAndMerge) {
  MarginalEstimator a({2});
  MarginalEstimator b({2});
  World w(1);
  w.Set(0, 1);
  a.Observe(w);
  w.Set(0, 0);
  a.Observe(w);
  b.Observe(w);
  EXPECT_DOUBLE_EQ(a.Estimate(0, 1), 0.5);
  a.Merge(b);
  EXPECT_EQ(a.num_samples(), 3u);
  EXPECT_NEAR(a.Estimate(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.SquaredErrorAgainst({{2.0 / 3.0, 1.0 / 3.0}}), 0.0);
}

}  // namespace
}  // namespace infer
}  // namespace fgpdb
