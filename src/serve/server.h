// fgpdb::serve — the multi-tenant server loop over api::Session.
//
// The paper promises a DATABASE: many users issuing queries against one
// probabilistic store while inference runs continuously. Everything below
// this layer is per-connection — one Session, one chain schedule, one
// caller driving Run(). serve::Server is the step from library to service:
//
//   ┌───────────────────────────── serve::Server ─────────────────────────┐
//   │  tenant registry          cross-session PlanCache    fair scheduler │
//   │  (TenantId → Session)     (normalized SQL → plan,    (bounded step  │
//   │                            LRU, hit/miss/eviction)    quanta on the │
//   │                                                       ThreadPool)   │
//   └─────────────────────────────────────────────────────────────────────┘
//        │ CreateTenant / RegisterQuery / Submit / Snapshot / Drain
//
// Scheduling model. A tenant's admitted work is a budget of samples.
// The scheduler slices every budget into bounded quanta
// (ServerOptions::quantum_samples) and round-robins runnable tenants
// through the shared ThreadPool: each task advances ONE tenant by ONE
// quantum (Session::RunQuantum), then re-enqueues the tenant behind every
// other runnable tenant. Quanta are the preemption points — a tenant can
// never hold a core longer than one quantum — and because each tenant's
// chain only advances inside its own serialized quanta, the interleaving
// across tenants cannot perturb any single tenant's trajectory: one tenant
// scheduled here at a fixed seed answers bitwise-identically to the same
// Session run standalone.
//
// Admission control and preemption use PR 6's convergence state. A tenant
// whose Until policy holds its error bound YIELDS its remaining budget
// (RunQuantum returns 0; the scheduler retires the tenant's pending work
// and frees the slot), and a per-tenant outstanding-samples cap rejects
// over-subscription with a typed StatusCode::kOverloaded — the client
// retries after draining, so admitted work is never silently dropped.
//
// Streaming results. Snapshot() serves a registered query's current
// marginals (api::QueryProgress) WITHOUT stopping the chain: it waits at
// most one quantum for the tenant's chain lock, reads, and returns while
// sampling continues. Snapshot and quantum latencies are recorded in
// util::LatencyHistogram (SchedulerMetrics) — the serve bench's p50/p95/p99
// numbers come from here and from client-side timing of this call.
#ifndef FGPDB_SERVE_SERVER_H_
#define FGPDB_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/plan_cache.h"
#include "api/session.h"
#include "util/latency_histogram.h"
#include "util/thread_pool.h"

namespace fgpdb {
namespace serve {

enum class StatusCode {
  kOk,
  /// Admission control: the tenant's outstanding-samples budget is full.
  /// Retriable — resubmit after some of the backlog drains.
  kOverloaded,
  /// Unknown tenant or query id.
  kNotFound,
  /// Malformed request (unknown command, zero-sample submission, querying
  /// a tenant with no registered queries). SQL that fails to parse/bind is
  /// NOT downgraded to this: like everywhere else in the library, it is
  /// fatal — the wire front end's job is to hand the server valid SQL.
  kInvalidArgument,
  /// The server reached max_tenants or is shutting down.
  kUnavailable,
};

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  static Status Ok() { return {}; }
  static Status Overloaded(std::string msg) {
    return {StatusCode::kOverloaded, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status Unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
};

/// Human-readable code name ("OK", "OVERLOADED", ...) — the wire token.
const char* StatusCodeName(StatusCode code);

using TenantId = uint64_t;
using QueryId = size_t;

struct TenantOptions {
  /// Per-tenant execution policy (serial, until, ...). Multi-chain
  /// policies spawn their own chain workers inside the tenant's quantum;
  /// tenants meant to share cores fairly should stay on resident-chain
  /// policies (serial / naive / Until(..., 1)).
  api::ExecutionPolicy policy = {};
  /// Chain schedule override; the server's default when unset. Distinct
  /// tenants with identical options sample identical chains — vary the
  /// seed per tenant for decorrelated service.
  bool has_evaluator = false;
  pdb::EvaluatorOptions evaluator = {};
  std::string name;  // for logs/stats only
};

struct ServerOptions {
  /// The one shared base world every tenant Session snapshots (COW — the
  /// base is never mutated). Borrowed; must outlive the server.
  pdb::ProbabilisticDatabase* database = nullptr;
  /// Optional model override for tenant sessions.
  const factor::Model* model = nullptr;
  /// Proposal factory handed to every tenant Session.
  pdb::ProposalFactory proposal_factory = {};
  /// Default chain schedule (TenantOptions::evaluator overrides).
  pdb::EvaluatorOptions evaluator = {};

  /// Cross-session plan cache capacity (distinct normalized texts).
  size_t plan_cache_capacity = 128;
  /// Scheduler slice: samples per quantum. Smaller = fairer interleaving
  /// and lower snapshot-latency tails, larger = less scheduling overhead.
  uint64_t quantum_samples = 16;
  /// Admission cap: max samples a tenant may have admitted-but-undrawn.
  /// Submissions beyond it get StatusCode::kOverloaded.
  uint64_t max_outstanding_samples = 4096;
  size_t max_tenants = 256;
  /// Scheduler worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
};

struct TenantStats {
  std::string name;
  size_t num_queries = 0;
  uint64_t submitted = 0;       // samples admitted
  uint64_t rejected = 0;        // submissions refused with kOverloaded
  uint64_t samples_drawn = 0;
  uint64_t yielded = 0;         // admitted samples retired by convergence
  uint64_t pending = 0;         // admitted, not yet drawn
  uint64_t quanta = 0;
  bool converged = false;
};

struct SchedulerMetrics {
  uint64_t quanta_executed = 0;
  uint64_t samples_drawn = 0;
  uint64_t submissions_admitted = 0;
  uint64_t submissions_rejected = 0;
  /// Quanta that found the tenant converged and retired its backlog.
  uint64_t converged_yields = 0;
  uint64_t snapshots_served = 0;
  /// Server-side service time of Snapshot() (lock wait + read).
  LatencyHistogram snapshot_latency;
  /// Wall time of each scheduler quantum.
  LatencyHistogram quantum_latency;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Drains admitted work, then joins the scheduler pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a tenant Session over the shared base world (reading plans
  /// through the server's cross-session cache).
  Status CreateTenant(TenantId* id, TenantOptions options = {});

  /// Waits for the tenant's backlog to drain, then closes its Session.
  Status CloseTenant(TenantId id);

  /// Parses/binds `sql` through the shared plan cache and registers it as
  /// a maintained view on the tenant's chain. Mid-run registration is
  /// legal (the view starts counting samples from now).
  Status RegisterQuery(TenantId id, const std::string& sql, QueryId* query);

  /// Admits `samples` of chain work for the tenant, or rejects with
  /// kOverloaded when the outstanding cap would be exceeded. Admitted work
  /// is scheduled immediately and never dropped (converged tenants retire
  /// theirs by yielding, which counts as service, not loss).
  Status Submit(TenantId id, uint64_t samples);

  /// Mid-run streaming read of one query's progress; never stops the
  /// chain. Blocks at most ~one quantum (the tenant's chain lock).
  Status Snapshot(TenantId id, QueryId query, api::QueryProgress* out);

  /// Blocks until every admitted sample has been drawn or yielded.
  void Drain();

  Status GetTenantStats(TenantId id, TenantStats* out) const;
  SchedulerMetrics metrics() const;
  api::PlanCache::Stats plan_cache_stats() const;
  size_t num_tenants() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Tenant {
    TenantId id = 0;
    std::string name;
    std::unique_ptr<api::Session> session;
    std::vector<api::ResultHandle> queries;

    /// Serializes all Session access (quanta, snapshots, registration):
    /// Sessions are externally synchronized, and this lock is the bounded
    /// wait behind streaming snapshots.
    std::mutex chain_mu;

    // --- guarded by Server::mu_ -------------------------------------------
    uint64_t pending = 0;
    bool queued = false;   // a quantum task for this tenant is on the pool
    bool closing = false;
    TenantStats stats;
  };

  /// Finds a tenant (shared ownership keeps it alive across the call even
  /// if CloseTenant races); null when unknown.
  std::shared_ptr<Tenant> FindTenant(TenantId id) const;
  /// Requires mu_: enqueue a quantum task if the tenant is runnable.
  void ScheduleLocked(const std::shared_ptr<Tenant>& tenant);
  /// Pool task body: one quantum for one tenant.
  void RunQuantumTask(std::shared_ptr<Tenant> tenant);

  ServerOptions options_;
  api::PlanCache plan_cache_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  /// Signalled whenever a tenant's pending/queued state clears.
  std::condition_variable idle_cv_;
  std::unordered_map<TenantId, std::shared_ptr<Tenant>> tenants_;
  TenantId next_tenant_id_ = 1;
  SchedulerMetrics metrics_;
  bool shutting_down_ = false;
};

}  // namespace serve
}  // namespace fgpdb

#endif  // FGPDB_SERVE_SERVER_H_
