// Allocation-free fixed-log-bucket latency histogram.
//
// The serve layer's scheduler and the multi-tenant bench record one latency
// per snapshot / quantum on hot paths, so the recorder must be O(1) with no
// allocation and no floating-point log: Record() is a bit-scan plus two
// shifts into a fixed bucket array. Buckets are HDR-style — kSubBuckets
// linear sub-buckets per power-of-two octave — so every recorded value
// lands in a bucket whose width is at most value/kSubBuckets, bounding the
// relative error of any quantile at 1/(2·kSubBuckets) (6.25% with the
// default 8 sub-buckets). Merge() is element-wise addition, which makes
// per-thread histograms foldable without locks on the record path.
#ifndef FGPDB_UTIL_LATENCY_HISTOGRAM_H_
#define FGPDB_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace fgpdb {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave: the resolution/footprint knob.
  static constexpr uint32_t kSubBucketBits = 3;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Octaves above the exact [0, kSubBuckets) range. 44 octaves cover
  /// [0, 2^46) ns — sub-nanosecond through ~19.5 hours — at full
  /// resolution; anything larger clamps into the final bucket.
  static constexpr uint32_t kOctaves = 44;
  static constexpr uint32_t kNumBuckets = kSubBuckets * (kOctaves + 1);

  void RecordNanos(uint64_t nanos) {
    buckets_[BucketIndex(nanos)] += 1;
    count_ += 1;
    if (nanos > max_nanos_) max_nanos_ = nanos;
  }
  void RecordSeconds(double seconds) {
    RecordNanos(seconds <= 0.0 ? 0
                               : static_cast<uint64_t>(seconds * 1e9 + 0.5));
  }

  uint64_t count() const { return count_; }
  /// Exact (not bucketed) maximum recorded value; 0 when empty.
  uint64_t max_nanos() const { return max_nanos_; }

  /// The `q`-quantile (q in [0,1]) as the representative midpoint of the
  /// bucket holding the ceil(q·count)-th smallest sample; 0 when empty.
  /// Within the bucketing's relative error of the exact order statistic.
  double QuantileNanos(double q) const;

  double P50Nanos() const { return QuantileNanos(0.50); }
  double P95Nanos() const { return QuantileNanos(0.95); }
  double P99Nanos() const { return QuantileNanos(0.99); }

  /// Element-wise fold of `other` into this histogram. Merging per-thread
  /// histograms then reading a quantile equals recording every sample into
  /// one histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

 private:
  /// Values 0..kSubBuckets-1 map exactly to buckets 0..kSubBuckets-1
  /// (octave 0). Above that, octave o ≥ 1 holds [kSubBuckets·2^(o-1),
  /// kSubBuckets·2^o) split into kSubBuckets linear buckets of width
  /// 2^(o-1): the sub-bucket is the kSubBucketBits bits below the MSB.
  static uint32_t BucketIndex(uint64_t nanos) {
    if (nanos < kSubBuckets) return static_cast<uint32_t>(nanos);
    const uint32_t msb = 63u - static_cast<uint32_t>(__builtin_clzll(nanos));
    const uint32_t octave = msb - kSubBucketBits + 1;
    if (octave > kOctaves) return kNumBuckets - 1;
    const uint32_t sub = static_cast<uint32_t>(
        (nanos >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
    return octave * kSubBuckets + sub;
  }

  /// [lower, upper) value range of bucket `index` (midpoint is the
  /// quantile representative).
  static void BucketBounds(uint32_t index, uint64_t* lower, uint64_t* upper);

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t max_nanos_ = 0;
};

}  // namespace fgpdb

#endif  // FGPDB_UTIL_LATENCY_HISTOGRAM_H_
