#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace fgpdb {
namespace {

std::atomic<int> g_min_level{-1};

int EnvLogLevel() {
  const char* env = std::getenv("FGPDB_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kInfo);
  return std::atoi(env);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

}  // namespace

LogLevel MinLogLevel() {
  int level = g_min_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = EnvLogLevel();
    g_min_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
  std::abort();
}

}  // namespace internal
}  // namespace fgpdb
