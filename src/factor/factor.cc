#include "factor/factor.h"

#include "util/logging.h"

namespace fgpdb {
namespace factor {

TableFactor::TableFactor(std::vector<VarId> variables,
                         std::vector<size_t> domain_sizes,
                         std::vector<double> log_scores)
    : Factor(std::move(variables)),
      domain_sizes_(std::move(domain_sizes)),
      log_scores_(std::move(log_scores)) {
  FGPDB_CHECK_EQ(this->variables().size(), domain_sizes_.size());
  size_t expected = 1;
  for (size_t s : domain_sizes_) expected *= s;
  FGPDB_CHECK_EQ(log_scores_.size(), expected);
}

size_t TableFactor::IndexOf(const std::vector<uint32_t>& values) const {
  FGPDB_CHECK_EQ(values.size(), domain_sizes_.size());
  size_t index = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    FGPDB_CHECK_LT(values[i], domain_sizes_[i]);
    index = index * domain_sizes_[i] + values[i];
  }
  return index;
}

double TableFactor::LogScore(const std::vector<uint32_t>& values) const {
  return log_scores_[IndexOf(values)];
}

void TableFactor::SetLogScore(const std::vector<uint32_t>& values,
                              double log_score) {
  log_scores_[IndexOf(values)] = log_score;
}

}  // namespace factor
}  // namespace fgpdb
