#include "view/delta.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace fgpdb {
namespace view {

const DeltaMultiset& DeltaMultiset::Empty() {
  static const DeltaMultiset kEmpty;
  return kEmpty;
}

void DeltaMultiset::Spill() {
  // Reserve past the current size: a delta that outgrew the inline buffer
  // is usually still growing (e.g. the Δ set of a long thinning interval).
  counts_.reserve(4 * kInlineCapacity);
  for (Entry& entry : inline_entries_) {
    counts_.emplace(std::move(entry.first), entry.second);
  }
  inline_entries_.clear();
  inline_entries_.shrink_to_fit();
  spilled_ = true;
}

void DeltaMultiset::Add(const Tuple& tuple, int64_t count) {
  if (count == 0) return;
  if (!spilled_) {
    for (Entry& entry : inline_entries_) {
      if (entry.first == tuple) {
        entry.second += count;
        if (entry.second == 0) {
          // Swap-and-pop: inline entries are unordered.
          entry = std::move(inline_entries_.back());
          inline_entries_.pop_back();
        }
        return;
      }
    }
    if (inline_entries_.size() < kInlineCapacity) {
      if (inline_entries_.capacity() < kInlineCapacity) {
        inline_entries_.reserve(kInlineCapacity);
      }
      inline_entries_.emplace_back(tuple, count);
      return;
    }
    Spill();
  }
  auto [it, inserted] = counts_.emplace(tuple, count);
  if (!inserted) {
    it->second += count;
    if (it->second == 0) counts_.erase(it);
  }
}

int64_t DeltaMultiset::Count(const Tuple& tuple) const {
  if (!spilled_) {
    for (const Entry& entry : inline_entries_) {
      if (entry.first == tuple) return entry.second;
    }
    return 0;
  }
  const auto it = counts_.find(tuple);
  return it == counts_.end() ? 0 : it->second;
}

void DeltaMultiset::Merge(const DeltaMultiset& other) {
  if (!spilled_ &&
      inline_entries_.size() + other.distinct_size() > kInlineCapacity) {
    Spill();
  }
  if (spilled_) {
    counts_.reserve(counts_.size() + other.distinct_size());
  }
  other.ForEach([this](const Tuple& tuple, int64_t count) {
    Add(tuple, count);
  });
}

void DeltaMultiset::ForEach(
    const std::function<void(const Tuple&, int64_t)>& fn) const {
  if (!spilled_) {
    for (const Entry& entry : inline_entries_) fn(entry.first, entry.second);
    return;
  }
  for (const auto& [tuple, count] : counts_) fn(tuple, count);
}

int64_t DeltaMultiset::PositiveTotal() const {
  int64_t total = 0;
  ForEach([&total](const Tuple&, int64_t count) {
    if (count > 0) total += count;
  });
  return total;
}

int64_t DeltaMultiset::NegativeTotal() const {
  int64_t total = 0;
  ForEach([&total](const Tuple&, int64_t count) {
    if (count < 0) total -= count;
  });
  return total;
}

bool DeltaMultiset::IsNonNegative() const {
  bool non_negative = true;
  ForEach([&non_negative](const Tuple&, int64_t count) {
    if (count < 0) non_negative = false;
  });
  return non_negative;
}

bool DeltaMultiset::operator==(const DeltaMultiset& other) const {
  // Entries never hold zero counts, so equal size + entry-wise containment
  // is equality, regardless of which representation each side uses.
  if (distinct_size() != other.distinct_size()) return false;
  bool equal = true;
  ForEach([&](const Tuple& tuple, int64_t count) {
    if (other.Count(tuple) != count) equal = false;
  });
  return equal;
}

std::string DeltaMultiset::ToString() const {
  std::vector<Entry> sorted;
  sorted.reserve(distinct_size());
  ForEach([&sorted](const Tuple& tuple, int64_t count) {
    sorted.emplace_back(tuple, count);
  });
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].first.ToString() + ":" + std::to_string(sorted[i].second);
  }
  out += "}";
  return out;
}

const DeltaMultiset& DeltaSet::Get(const std::string& table) const {
  const auto it = per_table_.find(table);
  return it == per_table_.end() ? DeltaMultiset::Empty() : it->second;
}

bool DeltaSet::empty() const {
  for (const auto& [table, delta] : per_table_) {
    (void)table;
    if (!delta.empty()) return false;
  }
  return true;
}

int64_t DeltaSet::TotalMagnitude() const {
  int64_t total = 0;
  for (const auto& [table, delta] : per_table_) {
    (void)table;
    total += delta.PositiveTotal() + delta.NegativeTotal();
  }
  return total;
}

void DeltaSet::ForEachTable(
    const std::function<void(const std::string&, const DeltaMultiset&)>& fn)
    const {
  for (const auto& [table, delta] : per_table_) fn(table, delta);
}

void DeltaAccumulator::RecordPreImage(const std::string& table, RowId row,
                                      const Tuple& pre_image) {
  // try_emplace copies the tuple only when the row is seen for the first
  // time this interval; repeat flips of a hot row are one map probe.
  per_table_[table].try_emplace(row, pre_image);
}

void DeltaAccumulator::Flush(const Database& db, DeltaSet* out) {
  FGPDB_CHECK(out != nullptr);
  for (auto& [table_name, rows] : per_table_) {
    if (rows.empty()) continue;
    const Table* table = db.RequireTable(table_name);
    DeltaMultiset& delta = out->ForTable(table_name);
    for (const auto& [row, pre_image] : rows) {
      const Tuple& current = table->Get(row);
      if (current == pre_image) continue;  // Reverted: nothing net changed.
      delta.Add(pre_image, -1);  // Δ−
      delta.Add(current, 1);     // Δ+
    }
    rows.clear();
  }
}

bool DeltaAccumulator::empty() const {
  for (const auto& [table, rows] : per_table_) {
    (void)table;
    if (!rows.empty()) return false;
  }
  return true;
}

size_t DeltaAccumulator::rows_touched() const {
  size_t total = 0;
  for (const auto& [table, rows] : per_table_) {
    (void)table;
    total += rows.size();
  }
  return total;
}

void DeltaAccumulator::Clear() {
  for (auto& [table, rows] : per_table_) {
    (void)table;
    rows.clear();
  }
}

}  // namespace view
}  // namespace fgpdb
