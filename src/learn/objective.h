// Training objectives for SampleRank: a performance measure over worlds
// whose *delta* under a hypothesized change is cheap to compute.
#ifndef FGPDB_LEARN_OBJECTIVE_H_
#define FGPDB_LEARN_OBJECTIVE_H_

#include <vector>

#include "factor/world.h"

namespace fgpdb {
namespace learn {

class Objective {
 public:
  virtual ~Objective() = default;

  /// objective(w ⊕ change) − objective(w). Positive means the change moves
  /// the world toward the ground truth.
  virtual double Delta(const factor::World& world,
                       const factor::Change& change) const = 0;

  /// Absolute objective of a world (diagnostics; may be O(#vars)).
  virtual double Score(const factor::World& world) const = 0;
};

/// Token-level accuracy against per-variable ground-truth value indexes —
/// the natural objective for NER label variables (paper §5.2 trains with
/// SampleRank against the TRUTH column).
class LabelAccuracyObjective final : public Objective {
 public:
  explicit LabelAccuracyObjective(std::vector<uint32_t> truth)
      : truth_(std::move(truth)) {}

  double Delta(const factor::World& world,
               const factor::Change& change) const override {
    double delta = 0.0;
    for (const auto& a : change.assignments) {
      const uint32_t truth = truth_.at(a.var);
      const uint32_t old_value = world.Get(a.var);
      delta += (a.value == truth ? 1.0 : 0.0) - (old_value == truth ? 1.0 : 0.0);
    }
    return delta;
  }

  double Score(const factor::World& world) const override {
    double correct = 0.0;
    for (size_t v = 0; v < truth_.size(); ++v) {
      if (world.Get(static_cast<factor::VarId>(v)) == truth_[v]) correct += 1.0;
    }
    return correct;
  }

  const std::vector<uint32_t>& truth() const { return truth_; }

 private:
  std::vector<uint32_t> truth_;
};

}  // namespace learn
}  // namespace fgpdb

#endif  // FGPDB_LEARN_OBJECTIVE_H_
