// CSV persistence for tables and databases.
//
// The paper's system stores worlds in an on-disk DBMS; this gives fgpdb a
// simple durable form: each table serializes to a CSV file with a typed
// header row, and a Database maps to a directory of such files. Used by
// examples and tooling to checkpoint / restore sampled worlds.
#ifndef FGPDB_STORAGE_CSV_IO_H_
#define FGPDB_STORAGE_CSV_IO_H_

#include <iosfwd>
#include <string>

#include "storage/database.h"

namespace fgpdb {

/// Writes `table` as CSV: first line "name:TYPE[:pk],..." then one line per
/// live row. Strings are quoted with '"' and internal quotes doubled.
void WriteTableCsv(const Table& table, std::ostream& os);

/// Reads a table serialized by WriteTableCsv. Fatal on malformed input.
std::unique_ptr<Table> ReadTableCsv(const std::string& name, std::istream& is);

/// Saves every table of `db` as `<dir>/<table>.csv`. Creates `dir` if
/// needed. Fatal on I/O errors.
void SaveDatabaseCsv(const Database& db, const std::string& dir);

/// Loads every `*.csv` in `dir` into a fresh Database.
std::unique_ptr<Database> LoadDatabaseCsv(const std::string& dir);

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_CSV_IO_H_
