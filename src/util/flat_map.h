// Open-addressed hash map for 64-bit keys (linear probing, power-of-two
// capacity). Built for the weight store on the sampler's hot path: a probe
// is one mix, one masked index, and a short contiguous scan — no buckets,
// no per-node allocations, no pointer chasing.
//
// Key 0 is used as the empty-slot sentinel internally; it is still a valid
// user key (stored in a dedicated side slot), so callers may feed arbitrary
// 64-bit hashes without reserving a value.
#ifndef FGPDB_UTIL_FLAT_MAP_H_
#define FGPDB_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"

namespace fgpdb {

/// Flat hash map from uint64_t to `Value`. Values must be cheap to copy
/// (rehashing moves them by assignment). Iteration order is unspecified.
template <typename Value>
class Flat64Map {
 public:
  Flat64Map() = default;

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  /// Value stored under `key`, or `fallback` if absent. Never inserts.
  Value FindOr(uint64_t key, Value fallback) const {
    if (key == 0) return has_zero_ ? zero_value_ : fallback;
    if (keys_.empty()) return fallback;
    size_t i = Mix64(key) & mask_;
    while (true) {
      const uint64_t k = keys_[i];
      if (k == key) return values_[i];
      if (k == 0) return fallback;
      i = (i + 1) & mask_;
    }
  }

  /// True if `key` is present.
  bool Contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    if (keys_.empty()) return false;
    size_t i = Mix64(key) & mask_;
    while (true) {
      const uint64_t k = keys_[i];
      if (k == key) return true;
      if (k == 0) return false;
      i = (i + 1) & mask_;
    }
  }

  /// Reference to the value under `key`, inserting a default-constructed
  /// value if absent. Invalidated by the next insertion. Updating a
  /// present key never rehashes (the table only grows on actual inserts).
  Value& Ref(uint64_t key) {
    if (key == 0) {
      if (!has_zero_) {
        has_zero_ = true;
        zero_value_ = Value{};
      }
      return zero_value_;
    }
    if (keys_.empty()) GrowIfNeeded(1);
    size_t i = Mix64(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    // Absent: insert. Growing may rehash, so re-probe for the new slot.
    GrowIfNeeded(size_ + 1);
    i = Mix64(key) & mask_;
    while (keys_[i] != 0) i = (i + 1) & mask_;
    keys_[i] = key;
    values_[i] = Value{};
    ++size_;
    return values_[i];
  }

  void Set(uint64_t key, Value value) { Ref(key) = std::move(value); }

  /// Pre-sizes the table for `n` keys (no-op if already large enough).
  void Reserve(size_t n) { GrowIfNeeded(n); }

  /// Calls fn(key, const Value&) for every entry, unspecified order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    if (has_zero_) fn(uint64_t{0}, zero_value_);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) fn(keys_[i], values_[i]);
    }
  }

  void Clear() {
    keys_.clear();
    values_.clear();
    mask_ = 0;
    size_ = 0;
    has_zero_ = false;
    zero_value_ = Value{};
  }

 private:
  // Grows when the table would exceed ~7/8 load at `needed` entries; the
  // high load factor trades a slightly longer probe for cache-resident
  // tables (probes are contiguous, so the scan stays in-line).
  void GrowIfNeeded(size_t needed) {
    if (keys_.size() >= 16 && needed * 8 <= keys_.size() * 7) return;
    size_t capacity = keys_.empty() ? 16 : keys_.size() * 2;
    while (needed * 8 > capacity * 7) capacity *= 2;
    Rehash(capacity);
  }

  void Rehash(size_t capacity) {
    FGPDB_CHECK((capacity & (capacity - 1)) == 0) << "capacity not power of 2";
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(capacity, 0);
    values_.assign(capacity, Value{});
    mask_ = capacity - 1;
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      size_t j = Mix64(old_keys[i]) & mask_;
      while (keys_[j] != 0) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
      ++size_;
    }
  }

  std::vector<uint64_t> keys_;  // 0 = empty slot.
  std::vector<Value> values_;
  size_t mask_ = 0;
  size_t size_ = 0;       // Entries excluding the key-0 side slot.
  bool has_zero_ = false;
  Value zero_value_{};
};

}  // namespace fgpdb

#endif  // FGPDB_UTIL_FLAT_MAP_H_
