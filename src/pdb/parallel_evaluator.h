// Multi-chain parallel query evaluation (paper §5.4).
//
// Runs B independent Metropolis–Hastings chains, each over its own
// copy-on-write snapshot of the world, and averages their marginal counts.
// Cross-chain samples are far more independent than within-chain samples,
// which is why the paper observes super-linear error reduction in the
// number of chains.
//
// Chains are scheduled onto a fixed-size thread pool capped at the hardware
// concurrency (never one thread per chain), each chain's world/proposal/
// evaluator are built inside its pool task and freed when it ends, and every
// finished chain folds its answer into the merged result under a mutex.
// Consequences: chain counts far beyond the core count are safe, peak
// memory is O(#threads) worlds rather than O(#chains), and merging overlaps
// sampling instead of running as a serial post-pass. Marginal counts are
// integers, so the merged answer is identical regardless of completion
// order — threaded and sequential runs agree bitwise for fixed seeds.
#ifndef FGPDB_PDB_PARALLEL_EVALUATOR_H_
#define FGPDB_PDB_PARALLEL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "pdb/convergence_stats.h"
#include "pdb/query_evaluator.h"
#include "pdb/shard_plan.h"

namespace fgpdb {
namespace pdb {

struct ParallelOptions {
  size_t num_chains = 4;
  uint64_t samples_per_chain = 100;
  EvaluatorOptions chain_options;
  /// Evaluate with view maintenance (Alg. 1) or the naive path (Alg. 3).
  bool materialized = true;
  /// Run chains on worker threads; false = sequential (deterministic order,
  /// useful with a single core or in tests).
  bool use_threads = true;
  /// Worker threads when use_threads is set. 0 = min(num_chains, hardware
  /// concurrency); never more threads than chains.
  size_t max_threads = 0;
  /// Also fold per-chain answer counts into CrossChainStats (per plan), so
  /// the caller can read Monte-Carlo standard errors — the until(confidence,
  /// eps) policy's stopping signal. Off by default: fixed-count callers
  /// should not pay for the per-tuple maps.
  bool track_chain_stats = false;
  /// Optional intra-chain sharding: every replica chain steps S shard-local
  /// sub-chains from the plan instead of one serial sampler (the factory in
  /// the plan replaces `make_proposal`). Chain seeds salt exactly as in the
  /// serial case, and each chain's shard streams derive from its salted
  /// seed, so B×S composition is deterministic. Shard stepping inside a
  /// chain runs sequentially whenever the chains themselves are threaded
  /// (no nested pools); results are identical either way. Borrowed; must
  /// outlive the evaluation.
  const ShardPlan* shard_plan = nullptr;
};

/// Factory producing a fresh per-chain proposal (proposals hold chain-local
/// state such as the §5.1 document batch, so they cannot be shared). Invoked
/// on pool worker threads, possibly concurrently — it must be safe to call
/// from several threads at once (both in-tree proposal factories are: they
/// only read shared immutable setup state).
using ProposalFactory =
    std::function<std::unique_ptr<infer::Proposal>(ProbabilisticDatabase&)>;

/// Snapshots `pdb` into `options.num_chains` copy-on-write worlds, runs each
/// chain for `samples_per_chain` samples on a hardware-sized thread pool,
/// and returns the merged (averaged) answer. `pdb` itself is never mutated.
QueryAnswer EvaluateParallel(const ProbabilisticDatabase& pdb,
                             const ra::PlanNode& plan,
                             const ProposalFactory& make_proposal,
                             const ParallelOptions& options);

/// Result of a multi-query parallel evaluation: one merged answer per plan
/// (index-aligned with the input), plus aggregate chain statistics for
/// progress reporting.
struct MultiQueryAnswer {
  std::vector<QueryAnswer> answers;
  /// Per-plan cross-chain standard-error statistics (index-aligned with
  /// `answers`). Empty unless ParallelOptions::track_chain_stats was set.
  /// Integer-sum state, so the streaming completion-order merge yields
  /// bitwise-identical statistics run to run.
  std::vector<CrossChainStats> stats;
  uint64_t total_proposed = 0;
  uint64_t total_accepted = 0;

  double acceptance_rate() const {
    return total_proposed == 0
               ? 0.0
               : static_cast<double>(total_accepted) /
                     static_cast<double>(total_proposed);
  }
};

/// The multi-query form of EvaluateParallel — the §4.2 economy extended to
/// §5.4: every chain maintains ALL the plans' views on its single sampler
/// (one delta drain fanned out per interval), so K queries over B chains
/// cost B sampling passes instead of K·B. Per-plan merged answers are
/// bitwise-identical to K separate EvaluateParallel calls with the same
/// options, because the chain trajectory never depends on the registered
/// queries. `plans` must be non-empty; `seed_salt` offsets every chain's
/// seed (distinct salts give independent chain batches, e.g. across
/// successive Session::Run epochs).
MultiQueryAnswer EvaluateParallelMulti(
    const ProbabilisticDatabase& pdb,
    const std::vector<const ra::PlanNode*>& plans,
    const ProposalFactory& make_proposal, const ParallelOptions& options,
    uint64_t seed_salt = 0);

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_PARALLEL_EVALUATOR_H_
