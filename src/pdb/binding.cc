#include "pdb/binding.h"

#include "util/logging.h"

namespace fgpdb {
namespace pdb {

factor::VarId TupleBinding::Bind(std::string table, RowId row, size_t column,
                                 std::shared_ptr<const factor::Domain> domain) {
  FGPDB_CHECK(domain != nullptr);
  if (fields_.use_count() > 1) {
    fields_ = std::make_shared<std::vector<FieldRef>>(*fields_);
  }
  fields_->push_back(
      FieldRef{std::move(table), row, column, std::move(domain)});
  return static_cast<factor::VarId>(fields_->size() - 1);
}

factor::World TupleBinding::LoadWorld(const Database& db) const {
  const std::vector<FieldRef>& fields = *fields_;
  factor::World world(fields.size());
  for (size_t v = 0; v < fields.size(); ++v) {
    const FieldRef& ref = fields[v];
    const Table* table = db.RequireTable(ref.table);
    const Value& value = table->Get(ref.row).at(ref.column);
    world.Set(static_cast<factor::VarId>(v),
              static_cast<uint32_t>(ref.domain->RequireIndexOf(value)));
  }
  return world;
}

void TupleBinding::StoreWorld(const factor::World& world, Database* db) const {
  const std::vector<FieldRef>& fields = *fields_;
  FGPDB_CHECK_EQ(world.size(), fields.size());
  for (size_t v = 0; v < fields.size(); ++v) {
    const FieldRef& ref = fields[v];
    Table* table = db->RequireTable(ref.table);
    table->UpdateField(ref.row, ref.column,
                       ref.domain->value(world.Get(static_cast<factor::VarId>(v))));
  }
}

void TupleBinding::ApplyToDatabase(
    const std::vector<factor::AppliedAssignment>& applied, Database* db,
    view::DeltaSet* deltas) const {
  for (const auto& a : applied) {
    const FieldRef& ref = fields_->at(a.var);
    Table* table = db->RequireTable(ref.table);
    const Tuple old_tuple = table->Get(ref.row);  // Copy before mutation.
    table->UpdateField(ref.row, ref.column, ref.domain->value(a.new_value));
    if (deltas != nullptr) {
      view::DeltaMultiset& delta = deltas->ForTable(ref.table);
      delta.Add(old_tuple, -1);           // Δ−
      delta.Add(table->Get(ref.row), 1);  // Δ+
    }
  }
}

void TupleBinding::ApplyToDatabase(
    const std::vector<factor::AppliedAssignment>& applied, Database* db,
    view::DeltaAccumulator* accumulator) const {
  for (const auto& a : applied) {
    const FieldRef& ref = fields_->at(a.var);
    Table* table = db->RequireTable(ref.table);
    if (accumulator != nullptr) {
      accumulator->RecordPreImage(ref.table, ref.row, table->Get(ref.row));
    }
    table->UpdateField(ref.row, ref.column, ref.domain->value(a.new_value));
  }
}

std::vector<size_t> TupleBinding::DomainSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(fields_->size());
  for (const auto& ref : *fields_) sizes.push_back(ref.domain->size());
  return sizes;
}

}  // namespace pdb
}  // namespace fgpdb
