// Exact inference by exhaustive enumeration — ground truth for tests.
//
// Query evaluation in general PDBs is #P-hard (paper §1); enumeration is
// feasible only for tiny graphs, which is exactly what the test suite uses
// to validate that MCMC marginals converge to the true distribution.
#ifndef FGPDB_INFER_EXACT_H_
#define FGPDB_INFER_EXACT_H_

#include <vector>

#include "factor/factor_graph.h"

namespace fgpdb {
namespace infer {

struct ExactResult {
  /// log Z (the paper's #P-hard normalizer, tractable only at toy scale).
  double log_partition = 0.0;
  /// marginals[var][value] = P(Y_var = value).
  std::vector<std::vector<double>> marginals;
  /// Probability of each enumerated world, in enumeration order
  /// (mixed-radix, last variable fastest). Empty if over `max_worlds`.
  std::vector<double> world_probabilities;
};

/// Enumerates all joint assignments of `graph` (fatal if more than
/// `max_worlds`) and returns exact marginals and log Z.
ExactResult ExactInference(const factor::FactorGraph& graph,
                           size_t max_worlds = 1u << 22);

/// Exact probability P(world) under the graph (enumerates Z; toy scale only).
double ExactWorldProbability(const factor::FactorGraph& graph,
                             const factor::World& world,
                             size_t max_worlds = 1u << 22);

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_EXACT_H_
