#include "ie/ner_proposal.h"

#include "ie/labels.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {

DocumentBatchProposal::DocumentBatchProposal(
    const std::vector<std::vector<factor::VarId>>* docs,
    NerProposalOptions options)
    : docs_(docs), options_(options) {
  FGPDB_CHECK(docs_ != nullptr);
  FGPDB_CHECK(!docs_->empty());
  FGPDB_CHECK_GT(options_.proposals_per_batch, 0u);
  FGPDB_CHECK_GT(options_.docs_per_batch, 0u);
}

void DocumentBatchProposal::ReloadBatch(Rng& rng) {
  batch_.clear();
  for (size_t i = 0; i < options_.docs_per_batch; ++i) {
    const auto& doc = (*docs_)[rng.UniformInt(docs_->size())];
    batch_.insert(batch_.end(), doc.begin(), doc.end());
  }
  proposals_since_reload_ = 0;
}

void DocumentBatchProposal::Propose(const factor::World& /*world*/, Rng& rng,
                                    factor::Change* change,
                                    double* log_ratio) {
  *log_ratio = 0.0;
  change->Clear();
  if (batch_.empty() || proposals_since_reload_ >= options_.proposals_per_batch) {
    ReloadBatch(rng);
  }
  ++proposals_since_reload_;
  // The batch IS the dense variable addressing: sites resolve by one index
  // into the preloaded VarId array, no hashing, and the caller's Change
  // buffer is reused — propose allocates only on the (rare) batch reload.
  const factor::VarId var = batch_[rng.UniformInt(batch_.size())];
  const uint32_t label = static_cast<uint32_t>(rng.UniformInt(kNumLabels));
  change->Set(var, label);
}

}  // namespace ie
}  // namespace fgpdb
