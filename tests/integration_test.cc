// End-to-end integration: the paper's full pipeline — generate corpus,
// train the skip-chain CRF with SampleRank, run MCMC query evaluation with
// view maintenance, and validate the probabilistic answers against the
// ground truth and against exact inference where tractable.
#include <gtest/gtest.h>

#include <cmath>

#include "ie/corpus.h"
#include "ie/metrics.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/forward_backward.h"
#include "infer/marginal_estimator.h"
#include "infer/metropolis_hastings.h"
#include "learn/samplerank.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"

namespace fgpdb {
namespace {

TEST(IntegrationTest, TrainedPipelineAnswersQuery1Accurately) {
  // 1. Corpus + PDB.
  const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 3000, .tokens_per_doc = 120, .seed = 55});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);

  // 2. Train with SampleRank (paper §5.2).
  ie::SkipChainNerModel model(tokens);
  learn::LabelAccuracyObjective objective(tokens.truth);
  ie::DocumentBatchProposal train_proposal(&tokens.docs,
                                           {.proposals_per_batch = 800});
  learn::SampleRank trainer(&model, &train_proposal, &objective,
                            {.learning_rate = 1.0, .seed = 21});
  factor::World train_world = tokens.pdb->world();
  trainer.Train(&train_world, 200000);
  tokens.pdb->set_model(&model);

  // 3. Evaluate Query 1 with view maintenance.
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, tokens.pdb->db());
  ie::DocumentBatchProposal proposal(&tokens.docs,
                                     {.proposals_per_batch = 800});
  pdb::MaterializedQueryEvaluator evaluator(
      tokens.pdb.get(), &proposal, plan.get(),
      {.steps_per_sample = 1000, .burn_in = 30000, .seed = 23});
  evaluator.Run(150);

  // 4. Strings that are truly always B-PER should have high marginals;
  //    strings never labeled person should have low marginals.
  std::unordered_map<std::string, std::pair<int, int>> truth_counts;
  for (const auto& record : corpus.tokens) {
    auto& [per, total] = truth_counts[record.text];
    if (record.truth_label == ie::LabelIndex("B-PER")) ++per;
    ++total;
  }
  double always_per_mass = 0.0;
  int always_per_n = 0;
  double never_per_mass = 0.0;
  int never_per_n = 0;
  for (const auto& [tuple, p] : evaluator.answer().Sorted()) {
    const std::string& text = tuple.at(0).AsString();
    const auto it = truth_counts.find(text);
    ASSERT_NE(it, truth_counts.end());
    const auto [per, total] = it->second;
    if (per == total) {
      always_per_mass += p;
      ++always_per_n;
    } else if (per == 0) {
      never_per_mass += p;
      ++never_per_n;
    }
  }
  ASSERT_GT(always_per_n, 0);
  const double always_avg = always_per_mass / always_per_n;
  EXPECT_GT(always_avg, 0.75)
      << "unambiguous person strings should have high marginals";
  // Never-person strings do appear in the answer with nonzero probability —
  // exactly like the paper's Figure 8 tail ("God", "Kunming", ...) — because
  // a frequent string has many chances for one of its tokens to be labeled
  // B-PER in some sample. The calibration claim is per-string: their average
  // marginal must sit clearly below the true persons'.
  if (never_per_n > 0) {
    EXPECT_LT(never_per_mass / never_per_n, always_avg - 0.3)
        << "never-person strings should rank clearly below true persons";
  }
}

TEST(IntegrationTest, McmcMatchesForwardBackwardOnLinearChain) {
  // With skip edges disabled the model is a linear chain, so MH marginals
  // must converge to the exact forward-backward marginals — the "sanity
  // anchor" connecting our sampler to exact inference.
  const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 60, .tokens_per_doc = 60, .seed = 63});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ASSERT_EQ(tokens.docs.size(), 1u);
  ie::SkipChainNerModel model(tokens, {.use_skip_edges = false});
  model.InitializeFromCorpusStatistics(tokens, /*skip_weight=*/0.0,
                                       /*emission_scale=*/1.0);
  tokens.pdb->set_model(&model);

  // Exact marginals via forward-backward on equivalent potentials.
  const size_t n = tokens.num_tokens();
  infer::ChainPotentials potentials;
  potentials.node.assign(n, std::vector<double>(ie::kNumLabels));
  potentials.edge.assign(ie::kNumLabels,
                         std::vector<double>(ie::kNumLabels));
  factor::World probe(n);
  // Node potential (emission + bias) of label y at position t is the local
  // delta of a transition-free, skip-free copy of the model.
  ie::SkipChainNerModel node_only(
      tokens, {.use_skip_edges = false, .use_transitions = false});
  node_only.parameters() = model.parameters();
  for (size_t t = 0; t < n; ++t) {
    for (uint32_t y = 0; y < ie::kNumLabels; ++y) {
      factor::Change change;
      change.Set(static_cast<factor::VarId>(t), y);
      potentials.node[t][y] = node_only.LogScoreDelta(probe, change);
    }
  }
  // Transition potentials read from the shared parameter store.
  for (uint32_t a = 0; a < ie::kNumLabels; ++a) {
    for (uint32_t b = 0; b < ie::kNumLabels; ++b) {
      potentials.edge[a][b] = model.parameters().Get(
          factor::MakeFeatureId("transition", a, b));
    }
  }
  const infer::ChainResult exact = infer::ForwardBackward(potentials);

  // MCMC marginals.
  ie::DocumentBatchProposal proposal(&tokens.docs,
                                     {.proposals_per_batch = 100000});
  auto sampler = tokens.pdb->MakeSampler(&proposal, /*seed=*/71);
  infer::MarginalEstimator estimator(tokens.pdb->binding().DomainSizes());
  sampler->Run(50000);
  for (int i = 0; i < 1200000; ++i) {
    sampler->Step();
    if (i % 5 == 0) estimator.Observe(tokens.pdb->world());
  }
  double max_abs_err = 0.0;
  for (size_t t = 0; t < n; ++t) {
    for (uint32_t y = 0; y < ie::kNumLabels; ++y) {
      max_abs_err = std::max(
          max_abs_err, std::abs(estimator.Estimate(static_cast<factor::VarId>(t), y) -
                                exact.marginals[t][y]));
    }
  }
  EXPECT_LT(max_abs_err, 0.05)
      << "MCMC should converge to forward-backward marginals on a chain";
}

TEST(IntegrationTest, DatabaseStaysConsistentWithWorldDuringSampling) {
  // The invariant of §3: the relational DB always stores the single current
  // possible world.
  const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 400, .tokens_per_doc = 80, .seed = 81});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  auto sampler = tokens.pdb->MakeSampler(&proposal, /*seed=*/91);
  sampler->Run(20000);
  const Table* table = tokens.pdb->db().RequireTable(ie::kTokenTable);
  const auto domain = ie::LabelDomain();
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    const Value& stored = table->Get(v).at(ie::kColLabel);
    EXPECT_EQ(domain->RequireIndexOf(stored),
              tokens.pdb->world().Get(static_cast<factor::VarId>(v)))
        << "field " << v << " diverged from the world";
  }
}

TEST(IntegrationTest, AggregateAnswerDistributionIsPeaked) {
  // Fig. 7's qualitative claim: the Query 2 count distribution concentrates
  // around its mode (which is what makes MCMC effective on aggregates).
  const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 2000, .tokens_per_doc = 100, .seed = 95});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery2, tokens.pdb->db());
  ie::DocumentBatchProposal proposal(&tokens.docs);
  pdb::MaterializedQueryEvaluator evaluator(
      tokens.pdb.get(), &proposal, plan.get(),
      {.steps_per_sample = 500, .burn_in = 40000, .seed = 97});
  evaluator.Run(400);
  // Mass within ±10% of the mean count should dominate.
  const auto answer = evaluator.answer().Sorted();
  double mean = 0.0;
  for (const auto& [tuple, p] : answer) mean += tuple.at(0).AsNumeric() * p;
  double near_mass = 0.0, total_mass = 0.0;
  for (const auto& [tuple, p] : answer) {
    total_mass += p;
    if (std::abs(tuple.at(0).AsNumeric() - mean) <= 0.1 * mean + 2) {
      near_mass += p;
    }
  }
  EXPECT_GT(near_mass / total_mass, 0.8);
}

}  // namespace
}  // namespace fgpdb
