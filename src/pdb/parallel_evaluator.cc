#include "pdb/parallel_evaluator.h"

#include <algorithm>
#include <mutex>

#include "pdb/shared_chain.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fgpdb {
namespace pdb {

namespace {

// Per-chain result: the chain's answers (index-aligned with the plans) and
// its sampler counters.
struct ChainResult {
  std::vector<QueryAnswer> answers;
  uint64_t proposed = 0;
  uint64_t accepted = 0;
};

// Builds, runs, and tears down one chain: a copy-on-write snapshot of the
// base world, a fresh proposal, and a shared-chain evaluator maintaining
// every plan's view on the one sampler. All chain state lives and dies
// inside this call, so a pool running T worker threads holds at most T
// worlds at a time no matter how many chains are requested.
//
// Materialized chains each compile their own views, which matters for the
// routed delta pipeline: the subscription maps, routing masks, reusable
// operator buffers, and the TupleArena are per-view state owned by exactly
// one chain — nothing in the delta path is shared across threads, so chains
// apply deltas without synchronization.
ChainResult RunChain(const ProbabilisticDatabase& pdb,
                     const std::vector<const ra::PlanNode*>& plans,
                     const ProposalFactory& make_proposal,
                     const ParallelOptions& options, size_t chain_index,
                     uint64_t seed_salt) {
  std::unique_ptr<ProbabilisticDatabase> world = pdb.Snapshot();
  EvaluatorOptions chain_options = options.chain_options;
  // Decorrelate chains: each gets its own seed stream, a function of the
  // chain index (and the caller's salt) alone so scheduling cannot change
  // results.
  chain_options.seed = options.chain_options.seed + seed_salt +
                       0x9e3779b97f4a7c15ULL * (chain_index + 1);
  const bool sharded =
      options.shard_plan != nullptr && options.shard_plan->has_plan();
  std::unique_ptr<infer::Proposal> proposal;
  if (!sharded) proposal = make_proposal(*world);
  SharedChainEvaluator evaluator(world.get(), proposal.get(), chain_options,
                                 options.materialized);
  if (sharded) {
    // Shard streams derive from the salted chain seed, so the B×S grid of
    // RNG streams is a pure function of (base seed, salt, chain, shard).
    // Inner stepping stays sequential when the chains are threaded — the
    // outer pool already owns the cores, and the merge is order-fixed so
    // threading never changes the answer anyway.
    ShardedExecution exec;
    exec.use_threads = options.use_threads && options.num_chains == 1;
    exec.max_threads = options.max_threads;
    evaluator.EnableSharding(*options.shard_plan, exec);
  }
  for (const ra::PlanNode* plan : plans) evaluator.AddQuery(plan);
  evaluator.Run(options.samples_per_chain);
  ChainResult result;
  result.answers.reserve(plans.size());
  for (size_t q = 0; q < plans.size(); ++q) {
    result.answers.push_back(evaluator.answer(q));
  }
  result.proposed = evaluator.num_proposed();
  result.accepted = evaluator.num_accepted();
  return result;
}

}  // namespace

MultiQueryAnswer EvaluateParallelMulti(
    const ProbabilisticDatabase& pdb,
    const std::vector<const ra::PlanNode*>& plans,
    const ProposalFactory& make_proposal, const ParallelOptions& options,
    uint64_t seed_salt) {
  FGPDB_CHECK_GT(options.num_chains, 0u);
  FGPDB_CHECK(!plans.empty());

  MultiQueryAnswer merged;
  merged.answers.resize(plans.size());
  if (options.track_chain_stats) merged.stats.resize(plans.size());
  auto fold = [&merged, &options](const ChainResult& chain) {
    // Streaming merge: fold a chain in as soon as it finishes, while other
    // chains are still sampling. Counts are integers (cross-chain stats
    // included), so the merge order cannot change the result.
    for (size_t q = 0; q < chain.answers.size(); ++q) {
      merged.answers[q].Merge(chain.answers[q]);
      if (options.track_chain_stats) {
        merged.stats[q].ObserveChain(chain.answers[q]);
      }
    }
    merged.total_proposed += chain.proposed;
    merged.total_accepted += chain.accepted;
  };

  if (options.use_threads && options.num_chains > 1) {
    const size_t num_threads =
        options.max_threads > 0
            ? std::min(options.max_threads, options.num_chains)
            : ThreadPool::DefaultThreadCount(options.num_chains);
    std::mutex merge_mu;
    ThreadPool pool(num_threads);
    for (size_t b = 0; b < options.num_chains; ++b) {
      pool.Submit([&, b] {
        const ChainResult chain =
            RunChain(pdb, plans, make_proposal, options, b, seed_salt);
        std::lock_guard<std::mutex> lock(merge_mu);
        fold(chain);
      });
    }
    pool.Wait();
  } else {
    for (size_t b = 0; b < options.num_chains; ++b) {
      fold(RunChain(pdb, plans, make_proposal, options, b, seed_salt));
    }
  }
  return merged;
}

QueryAnswer EvaluateParallel(const ProbabilisticDatabase& pdb,
                             const ra::PlanNode& plan,
                             const ProposalFactory& make_proposal,
                             const ParallelOptions& options) {
  MultiQueryAnswer merged =
      EvaluateParallelMulti(pdb, {&plan}, make_proposal, options);
  return std::move(merged.answers[0]);
}

}  // namespace pdb
}  // namespace fgpdb
