// sql::NormalizeForCache — the shared plan-cache key. The cases that
// matter for cache identity: comment stripping (`--`, `/* */`), literal
// preservation, and agreement with the Session front door's key.
#include <gtest/gtest.h>

#include "api/session.h"
#include "sql/lexer.h"
#include "sql/normalize.h"

namespace fgpdb {
namespace {

TEST(NormalizeForCacheTest, StripsLineComments) {
  EXPECT_EQ(sql::NormalizeForCache("SELECT X FROM T -- the answer\n"
                                   "WHERE X = 1"),
            "SELECT X FROM T WHERE X = 1");
  // A trailing line comment with no newline still terminates cleanly.
  EXPECT_EQ(sql::NormalizeForCache("SELECT X FROM T -- tail"),
            "SELECT X FROM T");
}

TEST(NormalizeForCacheTest, StripsBlockComments) {
  EXPECT_EQ(sql::NormalizeForCache("SELECT /* cols */ X FROM /* rel\n"
                                   "spanning lines */ T WHERE X = 1"),
            "SELECT X FROM T WHERE X = 1");
}

TEST(NormalizeForCacheTest, CommentsAreTokenSeparators) {
  // A comment with no surrounding whitespace must still split tokens —
  // `X/* */Y` is two identifiers, never `XY`.
  EXPECT_EQ(sql::NormalizeForCache("SELECT X/* */Y FROM T"),
            "SELECT X Y FROM T");
  EXPECT_NE(sql::NormalizeForCache("SELECT X/* */Y FROM T"),
            sql::NormalizeForCache("SELECT XY FROM T"));
}

TEST(NormalizeForCacheTest, CommentedQuerySharesKeyWithPlainSpelling) {
  const std::string plain = "SELECT STRING FROM TOKEN WHERE LABEL = 'B-PER'";
  const std::string commented =
      "SELECT STRING -- project the mention text\n"
      "FROM TOKEN /* the token relation */\n"
      "WHERE LABEL = 'B-PER' -- person mentions";
  EXPECT_EQ(sql::NormalizeForCache(commented),
            sql::NormalizeForCache(plain));
}

TEST(NormalizeForCacheTest, CommentMarkersInsideStringsArePreserved) {
  EXPECT_EQ(sql::NormalizeForCache("SELECT X FROM T WHERE S = '--not a comment'"),
            "SELECT X FROM T WHERE S = '--not a comment'");
  EXPECT_EQ(sql::NormalizeForCache("SELECT X FROM T WHERE S = '/* kept */'"),
            "SELECT X FROM T WHERE S = '/* kept */'");
}

TEST(NormalizeForCacheTest, DivergentCommentsOnlyStillCollide) {
  EXPECT_EQ(sql::NormalizeForCache("SELECT X FROM T -- v1"),
            sql::NormalizeForCache("SELECT X FROM T -- v2 entirely different"));
}

TEST(NormalizeForCacheTest, MinusMinusIsAlwaysAComment) {
  // SQL's `--` comments unconditionally; `1 - -2` needs the space.
  EXPECT_EQ(sql::NormalizeForCache("SELECT X FROM T WHERE X = 1 - - 2 --gone"),
            "SELECT X FROM T WHERE X = 1 - - 2");
}

TEST(NormalizeForCacheTest, MatchesSessionNormalizeSql) {
  const std::string sql =
      "select STRING from TOKEN /* c */ where LABEL != 'B-PER' -- t";
  EXPECT_EQ(sql::NormalizeForCache(sql), api::Session::NormalizeSql(sql));
}

TEST(NormalizeForCacheTest, KeywordCaseAndOperatorCanonicalization) {
  EXPECT_EQ(sql::NormalizeForCache("select X from T where X != 1"),
            "SELECT X FROM T WHERE X <> 1");
}

TEST(LexerCommentTest, CommentedQueryLexesLikePlainQuery) {
  const auto plain = sql::Lex("SELECT X FROM T");
  const auto commented = sql::Lex("SELECT /* a */ X -- b\nFROM T");
  ASSERT_EQ(plain.size(), commented.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].type, commented[i].type);
    EXPECT_EQ(plain[i].text, commented[i].text);
  }
}

}  // namespace
}  // namespace fgpdb
