// Quickstart: build a probabilistic database over a small synthetic news
// corpus, attach a skip-chain CRF, and answer the paper's Query 1 with
// marginal probabilities via MCMC + materialized view maintenance.
//
//   ./examples/quickstart [num_tokens]
#include <cstdlib>
#include <iostream>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"
#include "util/stopwatch.h"

using namespace fgpdb;

int main(int argc, char** argv) {
  const size_t num_tokens = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  // 1. Generate a corpus and load it into the TOKEN relation. Every LABEL
  //    field becomes a hidden random variable initialized to 'O'.
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  std::cout << "Corpus: " << tokens.num_tokens() << " tokens, "
            << corpus.num_docs << " documents, vocabulary "
            << tokens.vocab.size() << "\n";

  // 2. Attach the skip-chain CRF (the external factor graph over the DB).
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  std::cout << "Model: " << model.num_skip_edges() << " skip edges\n";

  // 3. Evaluate Query 1 with the materialized-view evaluator (Alg. 1).
  std::cout << "Query: " << ie::kQuery1 << "\n";
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, tokens.pdb->db());
  ie::DocumentBatchProposal proposal(&tokens.docs);
  pdb::MaterializedQueryEvaluator evaluator(
      tokens.pdb.get(), &proposal, plan.get(),
      {.steps_per_sample = 2000, .burn_in = 10000, .seed = 17});

  Stopwatch timer;
  evaluator.Run(/*samples=*/200);
  std::cout << "Drew 200 samples (k=2000) in " << timer.ElapsedSeconds()
            << "s; MH acceptance rate "
            << evaluator.sampler().acceptance_rate() << "\n\n";

  // 4. Report the marginal probability of each tuple being in the answer.
  auto sorted = evaluator.answer().Sorted();
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "Top person-mention strings (tuple, Pr[t in answer]):\n";
  for (size_t i = 0; i < sorted.size() && i < 10; ++i) {
    std::cout << "  " << sorted[i].first.ToString() << "  "
              << sorted[i].second << "\n";
  }
  std::cout << "(" << sorted.size() << " tuples total)\n";
  return 0;
}
