#include "pdb/aggregate_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fgpdb {
namespace pdb {

AggregateDistribution::AggregateDistribution(const QueryAnswer& answer,
                                             size_t column) {
  for (const auto& [tuple, probability] : answer.Sorted()) {
    FGPDB_CHECK_LT(column, tuple.arity())
        << "aggregate answer tuple too narrow";
    values_.emplace_back(tuple.at(column).AsNumeric(), probability);
  }
  std::sort(values_.begin(), values_.end());
  for (const auto& [value, mass] : values_) {
    mean_ += value * mass;
    total_mass_ += mass;
  }
  // Normalize: answers track P(value observed in a sample); for aggregate
  // queries exactly one value occurs per sample, so masses already sum to
  // ~1, but guard against duplicate-free drift.
  if (total_mass_ > 0.0) mean_ /= total_mass_;
  for (const auto& [value, mass] : values_) {
    variance_ += (value - mean_) * (value - mean_) * mass;
  }
  if (total_mass_ > 0.0) variance_ /= total_mass_;
}

double AggregateDistribution::StdDev() const { return std::sqrt(variance_); }

double AggregateDistribution::Mode() const {
  FGPDB_CHECK(!values_.empty());
  double best_value = values_.front().first;
  double best_mass = values_.front().second;
  for (const auto& [value, mass] : values_) {
    if (mass > best_mass) {
      best_mass = mass;
      best_value = value;
    }
  }
  return best_value;
}

double AggregateDistribution::Quantile(double q) const {
  FGPDB_CHECK(!values_.empty());
  FGPDB_CHECK_GE(q, 0.0);
  FGPDB_CHECK_LE(q, 1.0);
  const double target = q * total_mass_;
  double cum = 0.0;
  for (const auto& [value, mass] : values_) {
    cum += mass;
    if (cum >= target) return value;
  }
  return values_.back().first;
}

double AggregateDistribution::MassWithin(double radius) const {
  double mass = 0.0;
  for (const auto& [value, m] : values_) {
    if (std::abs(value - mean_) <= radius) mass += m;
  }
  return total_mass_ > 0.0 ? mass / total_mass_ : 0.0;
}

std::vector<AggregateDistribution::HistogramBin>
AggregateDistribution::Histogram(size_t bins) const {
  FGPDB_CHECK_GT(bins, 0u);
  std::vector<HistogramBin> out(bins);
  if (values_.empty()) return out;
  const double lo = values_.front().first;
  const double hi = values_.back().first;
  const double width = std::max((hi - lo) / static_cast<double>(bins), 1e-12);
  for (size_t b = 0; b < bins; ++b) {
    out[b].lo = lo + static_cast<double>(b) * width;
    out[b].hi = lo + static_cast<double>(b + 1) * width;
  }
  for (const auto& [value, mass] : values_) {
    size_t b = static_cast<size_t>((value - lo) / width);
    if (b >= bins) b = bins - 1;
    out[b].mass += mass;
  }
  return out;
}

}  // namespace pdb
}  // namespace fgpdb
