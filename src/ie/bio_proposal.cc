#include "ie/bio_proposal.h"

#include "ie/labels.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {

BioConstrainedProposal::BioConstrainedProposal(
    const std::vector<std::vector<factor::VarId>>* docs,
    size_t proposals_per_batch, size_t docs_per_batch)
    : docs_(docs),
      proposals_per_batch_(proposals_per_batch),
      docs_per_batch_(docs_per_batch) {
  FGPDB_CHECK(docs_ != nullptr);
  FGPDB_CHECK(!docs_->empty());
  // Neighbor lookup across all documents.
  size_t max_var = 0;
  for (const auto& doc : *docs_) {
    for (factor::VarId v : doc) max_var = std::max<size_t>(max_var, v);
  }
  prev_.assign(max_var + 1, kNoVar);
  next_.assign(max_var + 1, kNoVar);
  for (const auto& doc : *docs_) {
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
      next_[doc[i]] = doc[i + 1];
      prev_[doc[i + 1]] = doc[i];
    }
  }
  valid_buf_.reserve(kNumLabels);
}

void BioConstrainedProposal::ReloadBatch(Rng& rng) {
  batch_.clear();
  for (size_t i = 0; i < docs_per_batch_; ++i) {
    const auto& doc = (*docs_)[rng.UniformInt(docs_->size())];
    batch_.insert(batch_.end(), doc.begin(), doc.end());
  }
  proposals_since_reload_ = 0;
}

void BioConstrainedProposal::FillValidLabels(const factor::World& world,
                                             factor::VarId var) {
  // The previous label is 'O' at document starts (a mention cannot
  // continue across a boundary).
  const uint32_t prev_label =
      prev_[var] == kNoVar ? kLabelO : world.Get(prev_[var]);
  valid_buf_.clear();
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    if (!ValidTransition(prev_label, y)) continue;
    if (next_[var] != kNoVar &&
        !ValidTransition(y, world.Get(next_[var]))) {
      continue;
    }
    valid_buf_.push_back(y);
  }
}

std::vector<uint32_t> BioConstrainedProposal::ValidLabels(
    const factor::World& world, factor::VarId var) const {
  auto* self = const_cast<BioConstrainedProposal*>(this);
  self->FillValidLabels(world, var);
  return valid_buf_;
}

void BioConstrainedProposal::Propose(const factor::World& world, Rng& rng,
                                     factor::Change* change,
                                     double* log_ratio) {
  *log_ratio = 0.0;  // Candidate set depends only on unchanged neighbors.
  change->Clear();
  if (batch_.empty() || proposals_since_reload_ >= proposals_per_batch_) {
    ReloadBatch(rng);
  }
  ++proposals_since_reload_;
  const factor::VarId var = batch_[rng.UniformInt(batch_.size())];
  FillValidLabels(world, var);
  if (valid_buf_.empty()) return;  // Neighbors pin this label; stay put.
  change->Set(var, valid_buf_[rng.UniformInt(valid_buf_.size())]);
}

}  // namespace ie
}  // namespace fgpdb
