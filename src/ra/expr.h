// Scalar expression trees evaluated over tuples.
//
// Expressions are built by the SQL binder (src/sql) or directly by library
// users; column references are resolved to positional indexes before
// execution, so evaluation never consults attribute names.
#ifndef FGPDB_RA_EXPR_H_
#define FGPDB_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace fgpdb {
namespace ra {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr, kNot };
enum class ArithmeticOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpName(CompareOp op);

class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates the expression against one input tuple.
  virtual Value Eval(const Tuple& tuple) const = 0;

  /// Copy-avoiding evaluation for hot loops (predicate filtering over
  /// deltas, comparison operands): returns a pointer to an already-
  /// materialized Value when the expression is a direct reference (column,
  /// constant) and only falls back to evaluating into *scratch otherwise.
  /// The pointer is valid while `tuple`, this expression, and *scratch
  /// are alive and unchanged.
  virtual const Value* EvalInto(const Tuple& tuple, Value* scratch) const {
    *scratch = Eval(tuple);
    return scratch;
  }

  /// SQL-ish rendering for diagnostics.
  virtual std::string ToString() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Expr> Clone() const = 0;

  /// Evaluates as a boolean predicate: non-null, non-zero numeric is true.
  bool EvalBool(const Tuple& tuple) const;
};

using ExprPtr = std::unique_ptr<Expr>;

class ColumnRef final : public Expr {
 public:
  ColumnRef(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Value Eval(const Tuple& tuple) const override { return tuple.at(index_); }
  const Value* EvalInto(const Tuple& tuple, Value*) const override {
    return &tuple.at(index_);
  }
  std::string ToString() const override { return name_; }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRef>(index_, name_);
  }

  size_t index() const { return index_; }
  const std::string& name() const { return name_; }

 private:
  size_t index_;
  std::string name_;
};

class Constant final : public Expr {
 public:
  explicit Constant(Value value) : value_(std::move(value)) {}

  Value Eval(const Tuple&) const override { return value_; }
  const Value* EvalInto(const Tuple&, Value*) const override {
    return &value_;
  }
  std::string ToString() const override { return value_.ToString(); }
  ExprPtr Clone() const override { return std::make_unique<Constant>(value_); }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

class Comparison final : public Expr {
 public:
  Comparison(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Tuple& tuple) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<Comparison>(op_, lhs_->Clone(), rhs_->Clone());
  }

  CompareOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class Logical final : public Expr {
 public:
  /// kNot takes a single operand (rhs == nullptr).
  Logical(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Tuple& tuple) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<Logical>(op_, lhs_->Clone(),
                                     rhs_ ? rhs_->Clone() : nullptr);
  }

  LogicalOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr* rhs() const { return rhs_.get(); }

 private:
  LogicalOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class Arithmetic final : public Expr {
 public:
  Arithmetic(ArithmeticOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Tuple& tuple) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<Arithmetic>(op_, lhs_->Clone(), rhs_->Clone());
  }

 private:
  ArithmeticOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// SQL `x IS NULL` / `x IS NOT NULL` (distinct from comparisons, which
/// collapse NULL operands to false).
class IsNull final : public Expr {
 public:
  IsNull(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  Value Eval(const Tuple& tuple) const override {
    const bool is_null = operand_->Eval(tuple).is_null();
    return Value::Int((is_null != negated_) ? 1 : 0);
  }
  std::string ToString() const override {
    return "(" + operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL") +
           ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<IsNull>(operand_->Clone(), negated_);
  }

 private:
  ExprPtr operand_;
  bool negated_;
};

/// SQL LIKE with '%' (any run) and '_' (any single char) wildcards.
class Like final : public Expr {
 public:
  Like(ExprPtr operand, std::string pattern)
      : operand_(std::move(operand)), pattern_(std::move(pattern)) {}

  Value Eval(const Tuple& tuple) const override;
  std::string ToString() const override {
    return "(" + operand_->ToString() + " LIKE '" + pattern_ + "')";
  }
  ExprPtr Clone() const override {
    return std::make_unique<Like>(operand_->Clone(), pattern_);
  }

  /// Exposed for tests: %-/_-pattern matching.
  static bool Matches(const std::string& text, const std::string& pattern);

 private:
  ExprPtr operand_;
  std::string pattern_;
};

/// Convenience builders.
ExprPtr Col(size_t index, std::string name = "");
ExprPtr Lit(Value value);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

}  // namespace ra
}  // namespace fgpdb

#endif  // FGPDB_RA_EXPR_H_
