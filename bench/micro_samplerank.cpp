// Microbench for the §5.2 claim: SampleRank learns the skip-chain CRF's
// parameters quickly ("in a matter of minutes" for 1M training steps on 10M
// tokens). Measures raw training throughput and reports steps/sec.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "learn/objective.h"
#include "learn/samplerank.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

uint64_t g_master = 2004;

void BM_SampleRankStep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ie::SyntheticCorpus corpus =
      ie::GenerateCorpus({.num_tokens = n, .seed = DeriveSeed(g_master, 0)});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  learn::LabelAccuracyObjective objective(tokens.truth);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  learn::SampleRank trainer(&model, &proposal, &objective,
                            {.learning_rate = 1.0,
                             .seed = DeriveSeed(g_master, 1)});
  factor::World world = tokens.pdb->world();
  for (auto _ : state) {
    trainer.Train(&world, 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SampleRankTrainToAccuracy(benchmark::State& state) {
  // Whole-run cost: steps needed to reach 95% walk accuracy from all-O.
  const size_t n = 20000;
  ie::SyntheticCorpus corpus =
      ie::GenerateCorpus({.num_tokens = n, .seed = DeriveSeed(g_master, 2)});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  learn::LabelAccuracyObjective objective(tokens.truth);
  for (auto _ : state) {
    ie::SkipChainNerModel model(tokens);
    ie::DocumentBatchProposal proposal(&tokens.docs);
    learn::SampleRank trainer(&model, &proposal, &objective,
                              {.learning_rate = 1.0,
                               .seed = DeriveSeed(g_master, 3)});
    factor::World world = tokens.pdb->world();
    uint64_t steps = 0;
    while (objective.Score(world) / tokens.num_tokens() < 0.95 &&
           steps < 4000000) {
      trainer.Train(&world, 10000);
      steps += 10000;
    }
    state.counters["steps_to_95pct"] = static_cast<double>(steps);
  }
}

}  // namespace

BENCHMARK(BM_SampleRankStep)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_SampleRankTrainToAccuracy)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  g_master = InitBenchSeed(&argc, argv, "micro_samplerank");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
