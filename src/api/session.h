// fgpdb::api::Session — the library's front door.
//
// The paper's architecture (§5) wires four pieces per query: a SQL plan, a
// proposal kernel, an MCMC sampler, and an evaluator. Session owns that
// wiring once per connection and lets N concurrent queries amortize one
// sampler:
//
//   auto session = api::Session::Open({.database = &pdb,
//                                      .proposal_factory = factory,
//                                      .evaluator = {.steps_per_sample = 1000}});
//   auto q1 = session->Register("SELECT STRING FROM TOKEN WHERE ...");
//   auto q2 = session->Register(session->Prepare("SELECT COUNT(*) ..."));
//   session->Run(500);                     // ONE chain maintains both views
//   for (auto& [t, p] : q1.Snapshot().answer.Sorted()) ...
//
// Prepare() binds and caches plans by normalized SQL text; Register()
// attaches a prepared query as a materialized view on the session's shared
// chain (the PR 3 delta drain fans out through the union of all registered
// views' table→scan subscriptions, so K queries cost one sampling pass plus
// only the subtrees their deltas touch); Run() advances the chain;
// ResultHandle::Snapshot() reads marginals, sample counts, and
// acceptance-rate progress per query mid-run.
//
// A single ExecutionPolicy replaces the previously divergent
// MaterializedQueryEvaluator / EvaluateParallel call paths (both remain as
// internals):
//
//   serial    — one shared chain, delta-maintained views (Alg. 1)
//   parallel  — num_chains COW-snapshot chains, each maintaining ALL
//               registered views; per-query answers merged as chains finish
//   naive     — one shared chain, full query per sample (Alg. 3 baseline)
//
// Thread-safety contract: a Session is externally synchronized — call it
// from one thread at a time (the parallel policy uses worker threads
// internally; the base database handed to Open() is never mutated by any
// policy, each session samples its own copy-on-write snapshot).
#ifndef FGPDB_API_SESSION_H_
#define FGPDB_API_SESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdb/parallel_evaluator.h"
#include "pdb/probabilistic_database.h"
#include "pdb/query_evaluator.h"
#include "pdb/shared_chain.h"
#include "ra/plan.h"

namespace fgpdb {
namespace api {

struct ExecutionPolicy {
  enum class Mode { kSerial, kParallel, kNaive };

  Mode mode = Mode::kSerial;
  /// kParallel only: chains, threading, and thread cap (0 = hardware).
  size_t num_chains = 4;
  bool use_threads = true;
  size_t max_threads = 0;

  static ExecutionPolicy Serial() { return {}; }
  static ExecutionPolicy Parallel(size_t num_chains, size_t max_threads = 0) {
    ExecutionPolicy p;
    p.mode = Mode::kParallel;
    p.num_chains = num_chains;
    p.max_threads = max_threads;
    return p;
  }
  static ExecutionPolicy Naive() {
    ExecutionPolicy p;
    p.mode = Mode::kNaive;
    return p;
  }
};

struct SessionOptions {
  /// The base world: tables, bindings, and (unless `model` overrides it)
  /// the factor-graph model. Borrowed; must outlive the session. Never
  /// mutated — the session samples its own copy-on-write snapshot.
  pdb::ProbabilisticDatabase* database = nullptr;

  /// Optional model override; defaults to the base database's model.
  const factor::Model* model = nullptr;

  /// Produces a fresh proposal per chain (proposals hold chain-local
  /// state). Required. Must be callable from worker threads under the
  /// parallel policy.
  pdb::ProposalFactory proposal_factory = {};

  /// Chain schedule: thinning k, burn-in, seed, adaptive thinning.
  pdb::EvaluatorOptions evaluator = {};

  ExecutionPolicy policy = {};
};

/// A bound, immutable plan cached by the session. Shared: several
/// registrations (or sessions over the same catalog shape) may hold it.
class PreparedQuery {
 public:
  /// The cache key: whitespace-collapsed, keyword-case-normalized text.
  const std::string& normalized_sql() const { return normalized_sql_; }
  /// The text originally handed to Prepare().
  const std::string& sql() const { return sql_; }
  const ra::PlanNode& plan() const { return *plan_; }

 private:
  friend class Session;
  PreparedQuery(std::string normalized, std::string sql, ra::PlanPtr plan)
      : normalized_sql_(std::move(normalized)),
        sql_(std::move(sql)),
        plan_(std::move(plan)) {}

  std::string normalized_sql_;
  std::string sql_;
  ra::PlanPtr plan_;
};

using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// A point-in-time copy of one registered query's progress.
struct QueryProgress {
  pdb::QueryAnswer answer;
  /// Samples folded into `answer` so far (across all chains).
  uint64_t samples = 0;
  /// Current thinning interval (serial/naive; adaptive mode moves it).
  uint64_t steps_per_sample = 0;
  /// Acceptance rate of the chain(s) feeding this query.
  double acceptance_rate = 0.0;
};

class Session;

/// Lightweight reference to a registered query. Valid while the session is
/// alive; copyable.
class ResultHandle {
 public:
  /// Stable copy of the query's progress — callable between Run() calls.
  QueryProgress Snapshot() const;

  const PreparedQueryPtr& query() const;
  size_t slot() const { return slot_; }

 private:
  friend class Session;
  ResultHandle(Session* session, size_t slot)
      : session_(session), slot_(slot) {}

  Session* session_;
  size_t slot_;
};

class Session {
 public:
  /// Opens a session over `options.database`: snapshots the base world,
  /// wires the model, and prepares the chain described by the policy.
  static std::unique_ptr<Session> Open(SessionOptions options);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and binds `sql` against the session's catalog. Results are
  /// cached by normalized text: preparing the same query twice returns the
  /// same PreparedQuery instance.
  PreparedQueryPtr Prepare(const std::string& sql);

  /// Attaches a prepared query as a maintained view on the session's
  /// shared chain(s). Registration is cheap and allowed mid-run; a query
  /// registered after sampling started counts samples from that point.
  ResultHandle Register(const PreparedQueryPtr& prepared);
  ResultHandle Register(const std::string& sql) {
    return Register(Prepare(sql));
  }

  /// Advances the session by `samples` collected samples per registered
  /// query: one shared chain under serial/naive, `num_chains` chains each
  /// maintaining every view under parallel (merged as they finish).
  void Run(uint64_t samples);

  size_t num_registered() const { return registered_.size(); }
  const ExecutionPolicy& policy() const { return options_.policy; }

  /// Prepared-statement cache size (distinct normalized texts).
  size_t prepared_cache_size() const { return prepared_cache_.size(); }

  /// Session-level union subscription map: base table → scan count across
  /// every registered view (serial/naive policies; parallel chains build
  /// their own per-chain copies).
  const std::unordered_map<std::string, size_t>& subscriptions() const;

  /// The cache key for `sql`: lexer-backed normalization. Whitespace
  /// between tokens collapses to single spaces, keywords uppercase, and
  /// `!=` canonicalizes to `<>`; identifiers and string literals are
  /// preserved verbatim (identifier resolution against the catalog is
  /// case-sensitive). Two texts share a cache entry exactly when they
  /// tokenize identically.
  static std::string NormalizeSql(const std::string& sql);

 private:
  friend class ResultHandle;

  explicit Session(SessionOptions options);

  struct Registered {
    PreparedQueryPtr query;
    /// Merged per-query answer (parallel policy; serial answers live in
    /// the shared-chain evaluator).
    pdb::QueryAnswer merged;
  };

  /// Lazily builds the serial/naive shared-chain evaluator.
  void EnsureChain();
  QueryProgress SnapshotSlot(size_t slot) const;

  SessionOptions options_;
  /// The session's private copy-on-write world (serial/naive chains run on
  /// it; parallel chains snapshot the base again per Run).
  std::unique_ptr<pdb::ProbabilisticDatabase> world_;
  std::unique_ptr<infer::Proposal> proposal_;
  std::unique_ptr<pdb::SharedChainEvaluator> chain_;

  std::unordered_map<std::string, PreparedQueryPtr> prepared_cache_;
  std::vector<Registered> registered_;
  /// Union of every registered view's table→scan routes (ScannedTables
  /// counts; identical to the per-view subscription maps summed).
  std::unordered_map<std::string, size_t> subscriptions_;

  /// Parallel policy bookkeeping: Run() epochs get distinct seed salts so
  /// successive calls sample fresh, decorrelated chain batches.
  uint64_t parallel_epoch_ = 0;
  uint64_t parallel_proposed_ = 0;
  uint64_t parallel_accepted_ = 0;
};

}  // namespace api
}  // namespace fgpdb

#endif  // FGPDB_API_SESSION_H_
