// Aligned plain-text table output for the figure benches, so each bench
// binary prints the same rows/series the paper's figures report, plus a CSV
// block that downstream plotting can consume.
#ifndef FGPDB_UTIL_TABLE_PRINTER_H_
#define FGPDB_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace fgpdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Writes an aligned, boxed table.
  void Print(std::ostream& os) const;

  /// Writes the same data as CSV (header row first).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fgpdb

#endif  // FGPDB_UTIL_TABLE_PRINTER_H_
